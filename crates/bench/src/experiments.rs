//! One experiment per table/figure of the paper's evaluation (§5–§7).
//!
//! Each `figNN_*` function returns structured rows *and* prints them in
//! the shape the paper reports, so `figures --fig N` regenerates the
//! artifact and EXPERIMENTS.md can record paper-vs-measured.

use crate::{NodeSut, Scale};
use pepc::config::{BatchingConfig, EpcConfig, IotConfig, SliceConfig, TwoLevelConfig};
use pepc::ctrl::{run_attach_with, Allocator, ControlPlane};
use pepc::proxy::Proxy;
use pepc::slice::Slice;
use pepc::state::ControlState;
use pepc::table::{DatapathWriterStore, GiantLockStore, PepcStore, RwLockFineStore, StateStore};
use pepc_backend::{Hss, Pcrf};
use pepc_baseline::{BaselinePreset, ClassicConfig, ClassicEpc};
use pepc_sigproto::s1ap::S1apPdu;
use pepc_sigproto::sctp::{Association, SctpEvent};
use pepc_workload::harness::{
    default_pepc_slice, measure, measure_with, ClassicSut, MeasureOpts, PepcSut, SystemUnderTest,
};
use pepc_workload::params::Defaults;
use pepc_workload::signaling::{EventMix, SignalingGen};
use pepc_workload::traffic::{TrafficGen, UserKeys};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn imsis(n: u64) -> Vec<u64> {
    (0..n).map(|i| Defaults::IMSI_BASE + i).collect()
}

fn pepc_sut(users: u64) -> (PepcSut, Vec<UserKeys>) {
    let mut sut = PepcSut::new(default_pepc_slice(users as usize, true, 32));
    let keys = sut.attach_all(&imsis(users));
    (sut, keys)
}

fn classic_sut(preset: BaselinePreset, name: &'static str, users: u64) -> (ClassicSut, Vec<UserKeys>) {
    // Bulk setup with the sync stalls disabled (the paper's systems were
    // pre-provisioned before measurement too); the preset's calibrated
    // behaviour applies during measurement only.
    let mut epc = ClassicEpc::new(ClassicConfig::mechanisms_only(preset));
    let mut keys = Vec::with_capacity(users as usize);
    for imsi in imsis(users) {
        epc.attach(imsi);
        epc.s1_handover(imsi, 0xE000_0000 + (imsi as u32 & 0xFFFF), 0xC0A8_0001);
        keys.push(UserKeys { teid: epc.uplink_teid(imsi).unwrap(), ue_ip: epc.ue_ip(imsi).unwrap() });
    }
    let mut sut = ClassicSut::new(epc, name);
    // Restore the calibrated stalls for the measurement phase.
    *sut.epc.config_mut() = ClassicConfig::preset(preset);
    (sut, keys)
}

// ---------------------------------------------------------------------------
// Figure 4 — data plane performance comparison
// ---------------------------------------------------------------------------

/// One row of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    pub system: &'static str,
    pub users: u64,
    pub attach_per_sec: u64,
    pub mpps: f64,
}

/// Figure 4: PEPC vs Industrial#1 vs Industrial#2 vs OAI vs OpenEPC
/// data-plane throughput. Paper parameters: 250 K users and 10 K
/// attach/s for PEPC & Industrial#1; 292 K users, 3 K events/s for
/// Industrial#2; OAI/OpenEPC use a single user.
pub fn fig04_comparison(scale: Scale) -> Vec<Fig4Row> {
    let opts = MeasureOpts { duration: scale.duration(), ..Default::default() };
    let mut rows = Vec::new();

    let users = scale.users(250_000);
    let attach_rate = 10_000;
    let pepc_latency;
    {
        let (mut sut, keys) = pepc_sut(users);
        let mut gen = TrafficGen::new(keys);
        let mut sig = SignalingGen::new(Defaults::IMSI_BASE, users, attach_rate, EventMix::attaches_only());
        let m = measure(&mut sut, &mut gen, Some(&mut sig), &opts);
        pepc_latency = m.pipeline_latency_report();
        rows.push(Fig4Row { system: "PEPC", users, attach_per_sec: attach_rate, mpps: m.mpps() });
    }
    {
        let (mut sut, keys) = classic_sut(BaselinePreset::Industrial1, "Industrial#1", users);
        let mut gen = TrafficGen::new(keys);
        let mut sig = SignalingGen::new(Defaults::IMSI_BASE, users, attach_rate, EventMix::attaches_only());
        let m = measure(&mut sut, &mut gen, Some(&mut sig), &opts);
        rows.push(Fig4Row { system: "Industrial#1", users, attach_per_sec: attach_rate, mpps: m.mpps() });
    }
    {
        let users2 = scale.users(292_000);
        let rate2 = 3_000;
        let (mut sut, keys) = classic_sut(BaselinePreset::Industrial2, "Industrial#2", users2);
        let mut gen = TrafficGen::new(keys);
        let mut sig = SignalingGen::new(Defaults::IMSI_BASE, users2, rate2, EventMix::attaches_only());
        let m = measure(&mut sut, &mut gen, Some(&mut sig), &opts);
        rows.push(Fig4Row { system: "Industrial#2", users: users2, attach_per_sec: rate2, mpps: m.mpps() });
    }
    for (preset, name) in [(BaselinePreset::Oai, "OpenAirInterface"), (BaselinePreset::OpenEpc, "OpenEPC")] {
        let (mut sut, keys) = classic_sut(preset, name, 1);
        let mut gen = TrafficGen::new(keys);
        let m = measure(&mut sut, &mut gen, None, &opts);
        rows.push(Fig4Row { system: name, users: 1, attach_per_sec: 0, mpps: m.mpps() });
    }

    println!("\nFigure 4 — data plane performance comparison (Mpps/core)");
    println!("{:<18} {:>10} {:>10} {:>10}", "system", "users", "attach/s", "Mpps");
    for r in &rows {
        println!("{:<18} {:>10} {:>10} {:>10.3}", r.system, r.users, r.attach_per_sec, r.mpps);
    }
    let pepc = rows[0].mpps;
    println!(
        "ratios: PEPC/Ind1 = {:.1}x, PEPC/Ind2 = {:.1}x, PEPC/OAI = {:.1}x, PEPC/OpenEPC = {:.1}x",
        pepc / rows[1].mpps,
        pepc / rows[2].mpps,
        pepc / rows[3].mpps,
        pepc / rows[4].mpps
    );
    if !pepc_latency.is_empty() {
        print!("{pepc_latency}");
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 5 — throughput vs number of users
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig5Row {
    pub system: &'static str,
    pub users: u64,
    pub mpps: f64,
}

/// Figure 5: data-plane performance with increasing user devices
/// (10 K attach/s held constant).
pub fn fig05_users(scale: Scale) -> Vec<Fig5Row> {
    let opts = MeasureOpts { duration: scale.duration(), ..Default::default() };
    let attach_rate = 10_000;
    let mut rows = Vec::new();
    let pepc_points = [100_000u64, 250_000, 500_000, 1_000_000, 2_000_000, 3_000_000];
    for paper_users in pepc_points {
        let users = scale.users(paper_users);
        let (mut sut, keys) = pepc_sut(users);
        let mut gen = TrafficGen::new(keys);
        let mut sig = SignalingGen::new(Defaults::IMSI_BASE, users, attach_rate, EventMix::attaches_only());
        let m = measure(&mut sut, &mut gen, Some(&mut sig), &opts);
        rows.push(Fig5Row { system: "PEPC", users, mpps: m.mpps() });
    }
    for paper_users in [100_000u64, 250_000, 500_000, 1_000_000] {
        let users = scale.users(paper_users);
        let (mut sut, keys) = classic_sut(BaselinePreset::Industrial1, "Industrial#1", users);
        let mut gen = TrafficGen::new(keys);
        let mut sig = SignalingGen::new(Defaults::IMSI_BASE, users, attach_rate, EventMix::attaches_only());
        let m = measure(&mut sut, &mut gen, Some(&mut sig), &opts);
        rows.push(Fig5Row { system: "Industrial#1", users, mpps: m.mpps() });
    }
    println!("\nFigure 5 — data plane performance vs number of users ({} attach/s)", attach_rate);
    println!("{:<14} {:>10} {:>10}", "system", "users", "Mpps");
    for r in &rows {
        println!("{:<14} {:>10} {:>10.3}", r.system, r.users, r.mpps);
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 6 — throughput vs signaling:data ratio
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig6Row {
    pub system: &'static str,
    pub users: u64,
    /// Signaling events per data packet (e.g. 0.1 = "1:10").
    pub ratio: f64,
    pub mpps: f64,
}

/// Figure 6: PEPC's data-plane rate as the signaling-to-data ratio grows,
/// for three population sizes, plus the Industrial#1 reference points.
pub fn fig06_signaling(scale: Scale) -> Vec<Fig6Row> {
    let opts = MeasureOpts { duration: scale.duration(), ..Default::default() };
    let ratios = [0.0001, 0.001, 0.01, 0.1, 0.5, 1.0];
    let mut rows = Vec::new();
    for paper_users in [1u64, 10_000, 1_000_000] {
        let users = if paper_users == 1 { 1 } else { scale.users(paper_users) };
        for &ratio in &ratios {
            let (mut sut, keys) = pepc_sut(users);
            let mut gen = TrafficGen::new(keys);
            // Exact ratio: interleave events with packets rather than
            // pacing by wall clock.
            let mut sig = SignalingGen::new(Defaults::IMSI_BASE, users, 0, EventMix { attach_fraction: 0.5 });
            let start = Instant::now();
            let mut offered: u64 = 0;
            let mut event_debt = 0.0f64;
            while start.elapsed() < opts.duration {
                for _ in 0..32 {
                    let m = gen.next_packet(0);
                    offered += 1;
                    if let Some(out) = sut.process(m) {
                        gen.recycle(out);
                    }
                    event_debt += ratio;
                    while event_debt >= 1.0 {
                        let ev = sig.next_event();
                        sut.signal(ev);
                        event_debt -= 1.0;
                    }
                }
            }
            let mpps = offered as f64 / start.elapsed().as_secs_f64() / 1e6;
            rows.push(Fig6Row { system: "PEPC", users, ratio, mpps });
        }
    }
    // Industrial#1 reference: collapses past 1:100.
    let users = scale.users(250_000);
    for &ratio in &[0.0001, 0.001, 0.01, 0.1] {
        let (mut sut, keys) = classic_sut(BaselinePreset::Industrial1, "Industrial#1", users);
        let mut gen = TrafficGen::new(keys);
        let mut sig = SignalingGen::new(Defaults::IMSI_BASE, users, 0, EventMix { attach_fraction: 0.5 });
        let start = Instant::now();
        let mut offered: u64 = 0;
        let mut event_debt = 0.0f64;
        while start.elapsed() < opts.duration {
            for _ in 0..32 {
                let m = gen.next_packet(0);
                offered += 1;
                if let Some(out) = sut.process(m) {
                    gen.recycle(out);
                }
                event_debt += ratio;
                while event_debt >= 1.0 {
                    let ev = sig.next_event();
                    sut.signal(ev);
                    event_debt -= 1.0;
                }
            }
        }
        let mpps = offered as f64 / start.elapsed().as_secs_f64() / 1e6;
        rows.push(Fig6Row { system: "Industrial#1", users, ratio, mpps });
    }
    println!("\nFigure 6 — data plane performance vs signaling/data ratio");
    println!("{:<14} {:>10} {:>10} {:>10}", "system", "users", "sig:data", "Mpps");
    for r in &rows {
        println!("{:<14} {:>10} {:>10} {:>10.3}", r.system, r.users, format!("1:{:.0}", 1.0 / r.ratio), r.mpps);
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 7 — scaling with data cores
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig7Row {
    pub data_cores: usize,
    pub users: u64,
    pub events_per_sec: u64,
    pub aggregate_mpps: f64,
    pub per_core_mpps: Vec<f64>,
}

/// Figure 7: aggregate throughput vs number of data cores. Slices share
/// nothing, so on this single-core host each slice is measured in
/// isolation and the aggregate is the sum (DESIGN.md §2); on a
/// many-core host the same slices run concurrently with the same result.
pub fn fig07_cores(scale: Scale) -> Vec<Fig7Row> {
    let opts = MeasureOpts { duration: scale.duration(), ..Default::default() };
    let mut rows = Vec::new();
    for cores in 1..=4usize {
        let paper_users = 2_500_000u64 * cores as u64;
        let users_total = scale.users(paper_users);
        let per_slice = users_total / cores as u64;
        let events = 25_000 * cores as u64;
        let mut per_core = Vec::with_capacity(cores);
        for _ in 0..cores {
            let (mut sut, keys) = pepc_sut(per_slice);
            let mut gen = TrafficGen::new(keys);
            let mut sig =
                SignalingGen::new(Defaults::IMSI_BASE, per_slice, events / cores as u64, EventMix::attaches_only());
            let m = measure(&mut sut, &mut gen, Some(&mut sig), &opts);
            per_core.push(m.mpps());
        }
        rows.push(Fig7Row {
            data_cores: cores,
            users: users_total,
            events_per_sec: events,
            aggregate_mpps: per_core.iter().sum(),
            per_core_mpps: per_core,
        });
    }
    println!("\nFigure 7 — data plane scaling with data cores (share-nothing sum)");
    println!("{:>6} {:>10} {:>10} {:>12}", "cores", "users", "events/s", "aggregate");
    for r in &rows {
        println!("{:>6} {:>10} {:>10} {:>9.3} Mpps", r.data_cores, r.users, r.events_per_sec, r.aggregate_mpps);
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 8 & 9 — state migration
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig8Row {
    pub migrations_per_sec: u64,
    pub mpps: f64,
    pub drop_vs_baseline_pct: f64,
}

fn migration_node(users: u64) -> (NodeSut, Vec<UserKeys>, Vec<u64>) {
    let config = EpcConfig {
        slices: 2,
        slice: SliceConfig {
            batching: BatchingConfig { sync_every_packets: 32 },
            expected_users: users as usize,
            ..SliceConfig::default()
        },
        ..EpcConfig::default()
    };
    let mut sut = NodeSut::new(pepc::node::PepcNode::new(config, None));
    let ids = imsis(users);
    let keys = sut.attach_all(&ids);
    (sut, keys, ids)
}

/// Figure 8: data-plane throughput at increasing migration rates.
///
/// One node instance serves every rate point (setup noise would otherwise
/// mask the migration cost); each point runs 3× the base window.
pub fn fig08_migration_tput(scale: Scale) -> Vec<Fig8Row> {
    let users = scale.users(100_000);
    let opts = MeasureOpts { duration: scale.duration() * 3, ..Default::default() };
    let (mut sut, keys, ids) = migration_node(users);
    let mut gen = TrafficGen::new(keys);
    let mut rows = Vec::new();
    let mut baseline = 0.0;
    for rate in [0u64, 1_000, 10_000, 25_000, 50_000, 100_000, 250_000] {
        let mut done: u64 = 0;
        let mut next = 0usize;
        let m = measure_with(&mut sut, &mut gen, None, &opts, |sut, elapsed_ns| {
            let target = (elapsed_ns as u128 * rate as u128 / 1_000_000_000) as u64;
            while done < target {
                let imsi = ids[next % ids.len()];
                next += 1;
                if let Some(cur) = sut.node.demux().slice_for_imsi(imsi) {
                    sut.migrate(imsi, 1 - cur);
                }
                done += 1;
            }
        });
        let mpps = m.mpps();
        if rate == 0 {
            baseline = mpps;
        }
        let drop = if baseline > 0.0 { (1.0 - mpps / baseline) * 100.0 } else { 0.0 };
        rows.push(Fig8Row { migrations_per_sec: rate, mpps, drop_vs_baseline_pct: drop.max(0.0) });
    }
    println!("\nFigure 8 — impact of state migrations on data plane throughput");
    println!("{:>12} {:>10} {:>12}", "migrations/s", "Mpps", "drop vs 0");
    for r in &rows {
        println!("{:>12} {:>10.3} {:>11.1}%", r.migrations_per_sec, r.mpps, r.drop_vs_baseline_pct);
    }
    rows
}

#[derive(Debug, Clone)]
pub struct Fig9Row {
    pub migrations_per_sec: u64,
    pub median_us: f64,
    pub p99_us: f64,
    pub max_us: f64,
}

/// Figure 9: per-packet latency distribution under migrations.
pub fn fig09_migration_latency(scale: Scale) -> Vec<Fig9Row> {
    let users = scale.users(100_000);
    let opts = MeasureOpts { duration: scale.duration() * 3, latency_sample_every: 4, ..Default::default() };
    let (mut sut, keys, ids) = migration_node(users);
    let mut gen = TrafficGen::new(keys);
    let mut rows = Vec::new();
    for rate in [0u64, 1_000, 10_000, 25_000] {
        let mut done: u64 = 0;
        let mut next = 0usize;
        let m = measure_with(&mut sut, &mut gen, None, &opts, |sut, elapsed_ns| {
            let target = (elapsed_ns as u128 * rate as u128 / 1_000_000_000) as u64;
            while done < target {
                let imsi = ids[next % ids.len()];
                next += 1;
                if let Some(cur) = sut.node.demux().slice_for_imsi(imsi) {
                    sut.migrate(imsi, 1 - cur);
                }
                done += 1;
            }
        });
        let h = m.latency.expect("latency sampled");
        rows.push(Fig9Row {
            migrations_per_sec: rate,
            median_us: h.quantile_ns(0.5) as f64 / 1000.0,
            p99_us: h.quantile_ns(0.99) as f64 / 1000.0,
            max_us: h.max_ns() as f64 / 1000.0,
        });
    }
    println!("\nFigure 9 — per-packet latency during state migrations (µs)");
    println!("{:>12} {:>10} {:>10} {:>10}", "migrations/s", "median", "p99", "max");
    for r in &rows {
        println!("{:>12} {:>10.2} {:>10.2} {:>10.2}", r.migrations_per_sec, r.median_us, r.p99_us, r.max_us);
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 10 & 11 — control plane over full S1AP/NAS/SCTP
// ---------------------------------------------------------------------------

/// An eNodeB↔MME rig running S1AP over the SCTP-lite association, against
/// a control plane with live HSS/PCRF backends.
pub struct SctpS1apRig {
    client: Association,
    server: Association,
    pub cp: ControlPlane,
}

impl SctpS1apRig {
    pub fn new(subscribers: u64) -> Self {
        let hss = Arc::new(Hss::new());
        hss.provision_range(Defaults::IMSI_BASE, subscribers, 100_000);
        let pcrf = Arc::new(Pcrf::with_standard_rules());
        let proxy = Arc::new(Proxy::new(hss, pcrf, 1, 40401));
        let cp = ControlPlane::new(
            Defaults::GW_IP,
            1,
            Allocator { teid_base: 0x0100_0000, ue_ip_base: 0x0A00_0001, guti_base: 0xD00D_0000, mme_ue_id_base: 1 },
            Some(proxy),
        );
        let mut client = Association::new(36412, 36412, 0xC11E, 7);
        let mut server = Association::new(36412, 36412, 0x5E4E, 7);
        client.connect().expect("fresh association");
        // Complete the 4-way handshake.
        loop {
            let c_out = client.take_outbound();
            let s_out = server.take_outbound();
            if c_out.is_empty() && s_out.is_empty() {
                break;
            }
            for p in c_out {
                server.handle_packet(&p).expect("handshake");
            }
            for p in s_out {
                client.handle_packet(&p).expect("handshake");
            }
        }
        SctpS1apRig { client, server, cp }
    }

    /// Send one S1AP PDU over SCTP, deliver to the control plane, and
    /// carry the responses back over SCTP. Exercises the full encode /
    /// chunk / TSN / decode path in both directions.
    pub fn rpc(&mut self, pdu: &S1apPdu) -> Vec<S1apPdu> {
        self.client.send(1, pdu.encode()).expect("established");
        let mut responses = Vec::new();
        loop {
            let c_out = self.client.take_outbound();
            let s_out = self.server.take_outbound();
            if c_out.is_empty() && s_out.is_empty() {
                break;
            }
            for p in c_out {
                let bytes = p.encode();
                let decoded = pepc_sigproto::sctp::SctpPacket::decode(&bytes).expect("wire");
                for ev in self.server.handle_packet(&decoded).expect("established") {
                    if let SctpEvent::Delivery { payload, .. } = ev {
                        let req = S1apPdu::decode(&payload).expect("s1ap");
                        for rsp in self.cp.handle_s1ap(&req) {
                            self.server.send(1, rsp.encode()).expect("established");
                        }
                    }
                }
            }
            for p in s_out {
                let bytes = p.encode();
                let decoded = pepc_sigproto::sctp::SctpPacket::decode(&bytes).expect("wire");
                for ev in self.client.handle_packet(&decoded).expect("established") {
                    if let SctpEvent::Delivery { payload, .. } = ev {
                        responses.push(S1apPdu::decode(&payload).expect("s1ap"));
                    }
                }
            }
        }
        responses
    }

    /// Run one full attach over the wire; true on success.
    pub fn attach(&mut self, imsi: u64, enb_ue_id: u32) -> bool {
        run_attach_with(|pdu| self.rpc(pdu), imsi, enb_ue_id, 0xE000_0000 + enb_ue_id, 0xC0A8_0001).is_some()
    }
}

/// Measured cost of one full attach procedure over S1AP/NAS/SCTP.
pub fn measure_attach_cost(attaches: u64) -> Duration {
    let mut rig = SctpS1apRig::new(attaches + 10);
    // Warm up.
    for i in 0..10 {
        assert!(rig.attach(Defaults::IMSI_BASE + i, i as u32 + 1), "warmup attach failed");
    }
    let start = Instant::now();
    for i in 0..attaches {
        let imsi = Defaults::IMSI_BASE + 10 + i;
        assert!(rig.attach(imsi, 100 + i as u32), "attach failed");
    }
    start.elapsed() / attaches.max(1) as u32
}

#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Attach requests per data packet (e.g. 1/304).
    pub ratio: f64,
    pub attach_per_sec: f64,
    pub data_cores: usize,
    pub ctrl_cores: usize,
    pub total_cores: usize,
}

/// Figure 10: total cores needed as the signaling:data ratio rises, with
/// full S1AP/NAS parsing over SCTP. Data load is pinned at one data
/// core's maximum rate; control cores = ceil(required attach rate /
/// single-core attach capacity).
pub fn fig10_ctrl_cores(scale: Scale) -> Vec<Fig10Row> {
    // Single data core max rate.
    let users = scale.users(10_000).max(1000);
    let (mut sut, keys) = pepc_sut(users);
    let mut gen = TrafficGen::new(keys);
    let m = measure(&mut sut, &mut gen, None, &MeasureOpts { duration: scale.duration(), ..Default::default() });
    let data_pps = m.mpps() * 1e6;
    // Single control core attach capacity.
    let samples = match scale {
        Scale::Quick => 2_000,
        Scale::Full => 10_000,
    };
    let per_attach = measure_attach_cost(samples);
    let attach_cap = 1.0 / per_attach.as_secs_f64();
    println!(
        "\nFigure 10 — cores for a given signaling:data ratio (S1AP/NAS over SCTP)\n\
         measured: data core {:.2} Mpps, attach cost {:.1} µs ({:.0} attach/s/core)",
        data_pps / 1e6,
        per_attach.as_nanos() as f64 / 1000.0,
        attach_cap
    );
    let mut rows = Vec::new();
    for denom in [10_000u64, 1_000, 304, 100, 50, 10] {
        let ratio = 1.0 / denom as f64;
        let attach_per_sec = data_pps * ratio;
        let ctrl_cores = (attach_per_sec / attach_cap).ceil().max(1.0) as usize;
        rows.push(Fig10Row { ratio, attach_per_sec, data_cores: 1, ctrl_cores, total_cores: 1 + ctrl_cores });
    }
    println!("{:>10} {:>12} {:>10} {:>10} {:>10}", "sig:data", "attach/s", "data", "ctrl", "total");
    for r in &rows {
        println!(
            "{:>10} {:>12.0} {:>10} {:>10} {:>10}",
            format!("1:{:.0}", 1.0 / r.ratio),
            r.attach_per_sec,
            r.data_cores,
            r.ctrl_cores,
            r.total_cores
        );
    }
    rows
}

#[derive(Debug, Clone)]
pub struct Fig11Row {
    pub ctrl_cores: usize,
    pub attach_per_sec: f64,
}

/// Figure 11: attach rate vs number of control cores, with the
/// kernel-SCTP serialization bottleneck the paper hit. The serialized
/// share of each attach (16.7%) is calibrated so 8 cores reach ~6× the
/// single-core rate, matching the paper's 20 K → 120 K curve; per-core
/// capacity itself is measured, not assumed.
pub fn fig11_attach_scaling(scale: Scale) -> Vec<Fig11Row> {
    let samples = match scale {
        Scale::Quick => 2_000,
        Scale::Full => 10_000,
    };
    let per_attach = measure_attach_cost(samples).as_secs_f64();
    let serial_fraction = 1.0 / 6.0; // kernel-SCTP share (paper §6.5)
    let serial = per_attach * serial_fraction;
    let mut rows = Vec::new();
    for cores in [1usize, 2, 4, 8] {
        let rate = (cores as f64 / per_attach).min(1.0 / serial);
        rows.push(Fig11Row { ctrl_cores: cores, attach_per_sec: rate });
    }
    println!(
        "\nFigure 11 — attach rate vs control cores (S1AP/NAS over SCTP)\n\
         measured per-attach cost {:.1} µs; serialized (kernel-SCTP) share {:.0}%",
        per_attach * 1e6,
        serial_fraction * 100.0
    );
    println!("{:>6} {:>14}", "cores", "attach/s");
    for r in &rows {
        println!("{:>6} {:>14.0}", r.ctrl_cores, r.attach_per_sec);
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 12 — shared-state implementations
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig12Row {
    pub implementation: &'static str,
    pub updates_per_sec: u64,
    pub visits_mpps: f64,
}

/// Drive one store with a dedicated data thread (per-packet visits) and a
/// control thread applying `updates_per_sec` control-state writes.
/// Returns data-path visits/second. Only meaningful with ≥3 physical
/// cores (data, control, OS); see [`fig12_lock_strategies`].
pub fn run_lock_experiment<S: StateStore>(store: Arc<S>, users: u64, updates_per_sec: u64, duration: Duration) -> f64 {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    for uid in 0..users {
        store.insert(uid, ControlState::new(uid));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let visits = Arc::new(AtomicU64::new(0));

    let s_data = Arc::clone(&store);
    let stop_d = Arc::clone(&stop);
    let visits_d = Arc::clone(&visits);
    let data = std::thread::spawn(move || {
        let mut lcg = 0x2545_F491_4F6C_DD1Du64;
        let mut local = 0u64;
        while !stop_d.load(Ordering::Relaxed) {
            for _ in 0..256 {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let uid = (lcg >> 33) % users;
                s_data.data_path_visit(uid, local.is_multiple_of(4), 100, local, &mut |c| c.tunnels.enb_teid != 0);
                local += 1;
            }
            visits_d.store(local, Ordering::Relaxed);
        }
    });

    let s_ctrl = Arc::clone(&store);
    let stop_c = Arc::clone(&stop);
    let ctrl = std::thread::spawn(move || {
        let per_ms = updates_per_sec / 1000;
        let mut lcg = 0x9E37_79B9u64;
        let start = Instant::now();
        let mut issued: u64 = 0;
        while !stop_c.load(Ordering::Relaxed) {
            let target = (start.elapsed().as_millis() as u64) * per_ms;
            while issued < target {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let uid = (lcg >> 33) % users;
                s_ctrl.update_ctrl(uid, &mut |c| {
                    c.tunnels.enb_teid = (issued & 0xFFFF) as u32 + 1;
                    c.tunnels.enb_ip = 0xC0A8_0001;
                });
                issued += 1;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    });

    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    data.join().expect("data thread");
    ctrl.join().expect("ctrl thread");
    visits.load(std::sync::atomic::Ordering::Relaxed) as f64 / duration.as_secs_f64()
}

/// Inline-measured constants for one store: per-visit cost and the
/// write-lock hold time of one control update (its critical section).
fn measure_store_constants<S: StateStore>(store: &S, users: u64, samples: u64) -> (f64, f64) {
    for uid in 0..users {
        store.insert(uid, ControlState::new(uid));
    }
    let mut lcg = 0x2545_F491_4F6C_DD1Du64;
    // Warm.
    for i in 0..samples / 4 {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        store.data_path_visit((lcg >> 33) % users, i % 4 == 0, 100, i, &mut |v| v.tunnels.gw_teid != u32::MAX);
    }
    let t = Instant::now();
    for i in 0..samples {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        store.data_path_visit((lcg >> 33) % users, i % 4 == 0, 100, i, &mut |v| v.tunnels.gw_teid != u32::MAX);
    }
    let visit_s = t.elapsed().as_secs_f64() / samples as f64;
    let t = Instant::now();
    for i in 0..samples {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        store.update_ctrl((lcg >> 33) % users, &mut |c| {
            c.tunnels.enb_teid = i as u32 + 1;
            c.tunnels.enb_ip = 0xC0A8_0001;
        });
    }
    let update_s = t.elapsed().as_secs_f64() / samples as f64;
    (visit_s, update_s)
}

/// Figure 12: giant lock vs datapath-writer vs rwlock-fine vs PEPC
/// (seqlock) under rising control update rates.
///
/// On a host with ≥3 physical cores this runs the real two-thread
/// contention experiment. On this reproduction's 1-CPU host cross-core
/// blocking physically cannot manifest (any control work steals the data
/// thread's only core 1:1 under *every* locking scheme), so the figure
/// is computed from measured per-store constants with the blocking
/// semantics made explicit:
///
/// * a dedicated data core's rate is `1 / visit_cost`, minus the fraction
///   of time the store's *global* write lock is held by the control core
///   (giant lock: every update; fine-grained designs: never — a per-user
///   hold blocks ~1/users of the traffic, negligible at 1 M users).
pub fn fig12_lock_strategies(scale: Scale) -> Vec<Fig12Row> {
    let users = scale.users(1_000_000);
    let duration = scale.duration();
    let rates = [0u64, 100_000, 500_000, 1_000_000, 3_000_000];
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut rows = Vec::new();
    if cores >= 3 {
        for &rate in &rates {
            let giant = run_lock_experiment(Arc::new(GiantLockStore::new(users as usize)), users, rate, duration);
            rows.push(Fig12Row { implementation: "Giant lock", updates_per_sec: rate, visits_mpps: giant / 1e6 });
            let dw = run_lock_experiment(Arc::new(DatapathWriterStore::new(users as usize)), users, rate, duration);
            rows.push(Fig12Row { implementation: "Datapath writer", updates_per_sec: rate, visits_mpps: dw / 1e6 });
            let rwf = run_lock_experiment(Arc::new(RwLockFineStore::new(users as usize)), users, rate, duration);
            rows.push(Fig12Row { implementation: "RwLock fine", updates_per_sec: rate, visits_mpps: rwf / 1e6 });
            let pepc = run_lock_experiment(Arc::new(PepcStore::new(users as usize)), users, rate, duration);
            rows.push(Fig12Row { implementation: "PEPC", updates_per_sec: rate, visits_mpps: pepc / 1e6 });
        }
        println!("\nFigure 12 — shared state implementations (measured, {cores} cores)");
    } else {
        let samples = 400_000;
        let (v_g, u_g) = measure_store_constants(&GiantLockStore::new(users as usize), users, samples);
        let (v_d, _) = measure_store_constants(&DatapathWriterStore::new(users as usize), users, samples);
        let (v_r, _) = measure_store_constants(&RwLockFineStore::new(users as usize), users, samples);
        let (v_p, _) = measure_store_constants(&PepcStore::new(users as usize), users, samples);
        println!(
            "\nFigure 12 — shared state implementations (single-CPU host: computed from\n\
             measured constants; see DESIGN.md §2. visit: giant {:.0} ns, datapath-writer {:.0} ns,\n\
             rwlock-fine {:.0} ns, PEPC seqlock {:.0} ns; giant-lock write hold {:.0} ns/update)",
            v_g * 1e9,
            v_d * 1e9,
            v_r * 1e9,
            v_p * 1e9,
            u_g * 1e9
        );
        for &rate in &rates {
            let blocked = (rate as f64 * u_g).min(1.0);
            rows.push(Fig12Row {
                implementation: "Giant lock",
                updates_per_sec: rate,
                visits_mpps: (1.0 - blocked) / v_g / 1e6,
            });
            rows.push(Fig12Row {
                implementation: "Datapath writer",
                updates_per_sec: rate,
                visits_mpps: 1.0 / v_d / 1e6,
            });
            rows.push(Fig12Row { implementation: "RwLock fine", updates_per_sec: rate, visits_mpps: 1.0 / v_r / 1e6 });
            rows.push(Fig12Row { implementation: "PEPC", updates_per_sec: rate, visits_mpps: 1.0 / v_p / 1e6 });
        }
    }
    println!("{:<18} {:>12} {:>10}", "implementation", "updates/s", "Mpps");
    for r in &rows {
        println!("{:<18} {:>12} {:>10.3}", r.implementation, r.updates_per_sec, r.visits_mpps);
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 13 — batching control→data updates
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Events per packet (1.0 = the paper's 1:1 point).
    pub ratio: f64,
    pub batched_mpps: f64,
    pub unbatched_mpps: f64,
}

/// Figure 13: syncing membership updates every 32 packets vs every packet
/// while attach events arrive at a fixed events:packets ratio.
///
/// Variants run in ABBA order and average two rounds each, cancelling
/// allocator-layout and cache-warmth ordering artifacts.
pub fn fig13_batching(scale: Scale) -> Vec<Fig13Row> {
    let users = scale.users(100_000);
    let duration = scale.duration() * 2;
    let run_one = |sync_every: u32, ratio: f64| -> f64 {
        let mut sut = PepcSut::new(default_pepc_slice(users as usize, true, sync_every));
        let keys = sut.attach_all(&imsis(users));
        let mut gen = TrafficGen::new(keys);
        let mut sig = SignalingGen::new(Defaults::IMSI_BASE, users, 0, EventMix::attaches_only());
        let start = Instant::now();
        let mut offered: u64 = 0;
        let mut debt = 0.0f64;
        while start.elapsed() < duration {
            for _ in 0..32 {
                let m = gen.next_packet(0);
                offered += 1;
                if let Some(out) = sut.process(m) {
                    gen.recycle(out);
                }
                debt += ratio;
                while debt >= 1.0 {
                    let ev = sig.next_event();
                    sut.signal(ev);
                    debt -= 1.0;
                }
            }
        }
        offered as f64 / start.elapsed().as_secs_f64() / 1e6
    };
    let mut rows = Vec::new();
    for ratio in [0.1f64, 0.5, 1.0] {
        // A B B A: batched, unbatched, unbatched, batched.
        let a1 = run_one(32, ratio);
        let b1 = run_one(1, ratio);
        let b2 = run_one(1, ratio);
        let a2 = run_one(32, ratio);
        rows.push(Fig13Row { ratio, batched_mpps: (a1 + a2) / 2.0, unbatched_mpps: (b1 + b2) / 2.0 });
    }
    println!("\nFigure 13 — impact of batching updates (sync every 32 vs every packet)");
    println!("{:>10} {:>12} {:>12} {:>8}", "sig:data", "batched", "unbatched", "gain");
    for r in &rows {
        println!(
            "{:>10} {:>9.3} M {:>9.3} M {:>7.1}%",
            format!("1:{:.0}", 1.0 / r.ratio),
            r.batched_mpps,
            r.unbatched_mpps,
            (r.batched_mpps / r.unbatched_mpps - 1.0) * 100.0
        );
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 14 — two-level state tables
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig14Row {
    pub always_on_pct: f64,
    pub churn: &'static str,
    pub two_level_mpps: f64,
    pub single_mpps: f64,
    pub improvement_pct: f64,
}

/// Figure 14: two-level vs single state table over the always-on share
/// and churn level. Variants run ABBA and average two rounds each.
pub fn fig14_two_level(scale: Scale) -> Vec<Fig14Row> {
    let total = scale.users(1_000_000);
    let duration = scale.duration();
    let run_one = |two_level: bool, always_on: u64, churn_frac: f64| -> f64 {
        let mut sut = PepcSut::new(default_pepc_slice(total as usize, two_level, 32));
        let all = imsis(total);
        let keys = sut.attach_all(&all);
        if two_level {
            // Everyone beyond the always-on set starts idle.
            for imsi in &all[always_on as usize..] {
                sut.slice.ctrl.demote_user(*imsi);
            }
            sut.slice.sync_now();
        }
        // Traffic targets the active population.
        let mut gen = TrafficGen::new(keys[..always_on as usize].to_vec());
        let churn_per_sec = (total as f64 * churn_frac) as u64;
        let mut churned: u64 = 0;
        let mut cold = always_on;
        let clock = pepc_fabric::Clock::new();
        let start = Instant::now();
        let mut offered: u64 = 0;
        while start.elapsed() < duration {
            if two_level {
                let target = (clock.now_ns() as u128 * churn_per_sec as u128 / 1_000_000_000) as u64;
                while churned < target {
                    let idx = (cold % total) as usize;
                    cold += 1;
                    let key = keys[idx];
                    // A packet for the cold user promotes it...
                    let mut m = gen.next_packet(0);
                    rewrite_uplink_teid(&mut m, key.teid);
                    offered += 1;
                    if let Some(out) = sut.process(m) {
                        gen.recycle(out);
                    }
                    // ...and the control plane demotes it again.
                    sut.slice.ctrl.demote_user(all[idx]);
                    churned += 1;
                }
                if churned.is_multiple_of(1024) {
                    sut.slice.sync_now();
                }
            }
            for _ in 0..32 {
                let m = gen.next_packet(0);
                offered += 1;
                if let Some(out) = sut.process(m) {
                    gen.recycle(out);
                }
            }
        }
        offered as f64 / start.elapsed().as_secs_f64() / 1e6
    };
    let mut rows = Vec::new();
    for &always_on_frac in &[0.01f64, 0.10, 0.50, 1.00] {
        for (churn_name, churn_frac) in [("low (1%/s)", 0.01f64), ("high (10%/s)", 0.10)] {
            let always_on = ((total as f64 * always_on_frac) as u64).max(1);
            let a1 = run_one(true, always_on, churn_frac);
            let b1 = run_one(false, always_on, churn_frac);
            let b2 = run_one(false, always_on, churn_frac);
            let a2 = run_one(true, always_on, churn_frac);
            let (two, single) = ((a1 + a2) / 2.0, (b1 + b2) / 2.0);
            rows.push(Fig14Row {
                always_on_pct: always_on_frac * 100.0,
                churn: churn_name,
                two_level_mpps: two,
                single_mpps: single,
                improvement_pct: (two / single - 1.0) * 100.0,
            });
        }
    }
    println!("\nFigure 14 — two-level vs single state table ({} devices)", total);
    println!("{:>10} {:>14} {:>10} {:>10} {:>8}", "always-on", "churn", "2-level", "single", "gain");
    for r in &rows {
        println!(
            "{:>9.0}% {:>14} {:>7.3} M {:>7.3} M {:>7.1}%",
            r.always_on_pct, r.churn, r.two_level_mpps, r.single_mpps, r.improvement_pct
        );
    }
    rows
}

/// Rewrite the TEID of a generated uplink packet in place (churn helper);
/// downlink packets are left untouched.
fn rewrite_uplink_teid(m: &mut pepc_net::Mbuf, teid: u32) {
    let d = m.data_mut();
    if d.len() >= 36 && d[0] == 0x45 && d[9] == 17 && u16::from_be_bytes([d[22], d[23]]) == pepc_net::GTPU_PORT {
        d[32..36].copy_from_slice(&teid.to_be_bytes());
    }
}

// ---------------------------------------------------------------------------
// Figure 15 — stateless-IoT customization
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig15Row {
    pub iot_pct: f64,
    pub customized_mpps: f64,
    pub uncustomized_mpps: f64,
    pub improvement_pct: f64,
}

/// Figure 15: throughput gain from the stateless-IoT fast path as the
/// IoT share of a large device population grows. Variants run ABBA and
/// average two rounds each.
pub fn fig15_iot(scale: Scale) -> Vec<Fig15Row> {
    let total = scale.users(10_000_000);
    let duration = scale.duration();
    let iot_teid_base = 0xF000_0000u32;
    let iot_ip_base = 0x6400_0000u32;
    let run_one = |customized: bool, iot_count: u64| -> f64 {
        let regular = total - iot_count;
        let cfg_users = if customized { regular } else { total }.max(1);
        let mut slice_cfg = SliceConfig {
            batching: BatchingConfig { sync_every_packets: 32 },
            two_level: TwoLevelConfig { enabled: true, idle_timeout_ns: u64::MAX },
            expected_users: cfg_users as usize,
            ..SliceConfig::default()
        };
        if customized {
            slice_cfg.iot = IotConfig {
                enabled: true,
                teid_base: iot_teid_base,
                ip_base: iot_ip_base,
                pool_size: iot_count.max(1) as u32,
            };
        }
        let slice = Slice::new(
            &slice_cfg,
            Defaults::GW_IP,
            1,
            Allocator { teid_base: 0x0100_0000, ue_ip_base: 0x0A00_0001, guti_base: 0xD00D_0000, mme_ue_id_base: 1 },
            None,
        );
        let mut sut = PepcSut::new(slice);
        // Regular devices (plus, uncustomized, the IoT devices too) get
        // full per-user state.
        let attached = if customized { regular } else { total };
        let mut keys = if attached > 0 { sut.attach_all(&imsis(attached)) } else { Vec::new() };
        if customized {
            // IoT devices live in the pool: keys are computed, no state.
            for j in 0..iot_count {
                keys.push(UserKeys { teid: iot_teid_base + j as u32, ue_ip: iot_ip_base + j as u32 });
            }
        }
        let mut gen = TrafficGen::new(keys);
        let m = measure(&mut sut, &mut gen, None, &MeasureOpts { duration, ..Default::default() });
        m.mpps()
    };
    let mut rows = Vec::new();
    for &iot_frac in &[0.05f64, 0.25, 0.50, 0.75, 1.0] {
        let iot_count = ((total as f64 * iot_frac) as u64).min(total);
        let a1 = run_one(true, iot_count);
        let b1 = run_one(false, iot_count);
        let b2 = run_one(false, iot_count);
        let a2 = run_one(true, iot_count);
        let (customized, uncustomized) = ((a1 + a2) / 2.0, (b1 + b2) / 2.0);
        rows.push(Fig15Row {
            iot_pct: iot_frac * 100.0,
            customized_mpps: customized,
            uncustomized_mpps: uncustomized,
            improvement_pct: (customized / uncustomized - 1.0) * 100.0,
        });
    }
    println!("\nFigure 15 — stateless-IoT customization ({} devices)", total);
    println!("{:>8} {:>12} {:>14} {:>8}", "IoT %", "customized", "uncustomized", "gain");
    for r in &rows {
        println!(
            "{:>7.0}% {:>9.3} M {:>11.3} M {:>7.1}%",
            r.iot_pct, r.customized_mpps, r.uncustomized_mpps, r.improvement_pct
        );
    }
    rows
}

// ---------------------------------------------------------------------------
// Ablation — decomposing the classic EPC's slowdown
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct AblationRow {
    pub configuration: &'static str,
    pub mpps: f64,
}

/// Ablation: how much of the classic EPC's deficit is *structural*
/// (duplicated state, double tunnel traversal, flat tables, ADC) versus
/// the *calibrated* synchronization stalls (DESIGN.md §6)? Runs the Fig 4
/// workload against PEPC, the mechanisms-only classic EPC, and the fully
/// calibrated one.
pub fn ablation_structural(scale: Scale) -> Vec<AblationRow> {
    let users = scale.users(250_000);
    let attach_rate = 10_000;
    let opts = MeasureOpts { duration: scale.duration(), ..Default::default() };
    let mut rows = Vec::new();

    let run_classic = |cfg: ClassicConfig| -> f64 {
        let mut epc = ClassicEpc::new(ClassicConfig::mechanisms_only(cfg.preset));
        let mut keys = Vec::with_capacity(users as usize);
        for imsi in imsis(users) {
            epc.attach(imsi);
            epc.s1_handover(imsi, 0xE000_0000 + (imsi as u32 & 0xFFFF), 0xC0A8_0001);
            keys.push(UserKeys { teid: epc.uplink_teid(imsi).unwrap(), ue_ip: epc.ue_ip(imsi).unwrap() });
        }
        let mut sut = ClassicSut::new(epc, "classic");
        *sut.epc.config_mut() = cfg;
        let mut gen = TrafficGen::new(keys);
        let mut sig = SignalingGen::new(Defaults::IMSI_BASE, users, attach_rate, EventMix::attaches_only());
        measure(&mut sut, &mut gen, Some(&mut sig), &opts).mpps()
    };

    {
        let (mut sut, keys) = pepc_sut(users);
        let mut gen = TrafficGen::new(keys);
        let mut sig = SignalingGen::new(Defaults::IMSI_BASE, users, attach_rate, EventMix::attaches_only());
        let m = measure(&mut sut, &mut gen, Some(&mut sig), &opts);
        rows.push(AblationRow { configuration: "PEPC (consolidated)", mpps: m.mpps() });
    }
    rows.push(AblationRow {
        configuration: "classic, mechanisms only",
        mpps: run_classic(ClassicConfig::mechanisms_only(BaselinePreset::Industrial1)),
    });
    {
        let mut cfg = ClassicConfig::mechanisms_only(BaselinePreset::Industrial1);
        cfg.adc_enabled = false;
        rows.push(AblationRow { configuration: "classic, mechanisms, no ADC", mpps: run_classic(cfg) });
    }
    rows.push(AblationRow {
        configuration: "classic, + calibrated sync stalls",
        mpps: run_classic(ClassicConfig::preset(BaselinePreset::Industrial1)),
    });

    println!("\nAblation — decomposing the classic EPC's slowdown (Fig 4 workload)");
    println!("{:<36} {:>10}", "configuration", "Mpps");
    for r in &rows {
        println!("{:<36} {:>10.3}", r.configuration, r.mpps);
    }
    let pepc = rows[0].mpps;
    println!(
        "structural share of deficit: {:.0}%  (rest is synchronization stalls)",
        ((pepc - rows[1].mpps) / (pepc - rows[3].mpps).max(1e-9) * 100.0).clamp(0.0, 100.0)
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sctp_s1ap_rig_attaches_over_the_wire() {
        let mut rig = SctpS1apRig::new(100);
        assert!(rig.attach(Defaults::IMSI_BASE + 5, 1));
        assert_eq!(rig.cp.user_count(), 1);
        assert!(rig.attach(Defaults::IMSI_BASE + 6, 2));
        assert_eq!(rig.cp.user_count(), 2);
        // Unknown subscriber: procedure fails cleanly.
        assert!(!rig.attach(Defaults::IMSI_BASE + 10_000, 3));
    }

    #[test]
    fn attach_cost_is_measurable() {
        let cost = measure_attach_cost(50);
        assert!(cost.as_nanos() > 0);
        assert!(cost < Duration::from_millis(50), "attach unexpectedly slow: {cost:?}");
    }

    #[test]
    fn lock_experiment_runs_all_stores() {
        let d = Duration::from_millis(30);
        let g = run_lock_experiment(Arc::new(GiantLockStore::new(100)), 100, 10_000, d);
        let w = run_lock_experiment(Arc::new(DatapathWriterStore::new(100)), 100, 10_000, d);
        let p = run_lock_experiment(Arc::new(PepcStore::new(100)), 100, 10_000, d);
        assert!(g > 0.0 && w > 0.0 && p > 0.0);
    }

    #[test]
    fn rewrite_teid_touches_only_uplink() {
        let mut gen = TrafficGen::new(vec![UserKeys { teid: 0x1111, ue_ip: 0x0A000001 }]);
        let mut up = gen.next_packet(0); // uplink first in the mix
        rewrite_uplink_teid(&mut up, 0x2222);
        let d = up.data();
        assert_eq!(u32::from_be_bytes([d[32], d[33], d[34], d[35]]), 0x2222);
        let mut down = gen.next_packet(0);
        let before = down.data().to_vec();
        rewrite_uplink_teid(&mut down, 0x2222);
        assert_eq!(down.data(), &before[..], "downlink untouched");
    }
}
