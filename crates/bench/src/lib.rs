//! # pepc-bench — harness pieces shared by the figure experiments and the
//! Criterion benches.
//!
//! The `figures` binary (this crate's `src/bin/figures.rs`) regenerates
//! every figure of the paper's evaluation; this library holds the
//! adapters and experiment bodies so Criterion benches and the binary
//! run exactly the same code.

pub mod experiments;
pub mod nodesut;

pub use experiments::*;
pub use nodesut::NodeSut;

/// Experiment scale: `quick` shrinks populations ~10× so the whole
/// figure suite completes in minutes; `full` is paper scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

impl Scale {
    /// Scale a paper-sized population down for quick runs.
    pub fn users(&self, paper: u64) -> u64 {
        match self {
            Scale::Quick => (paper / 10).max(1),
            Scale::Full => paper,
        }
    }

    /// Measurement window per data point.
    pub fn duration(&self) -> std::time::Duration {
        match self {
            Scale::Quick => std::time::Duration::from_millis(300),
            Scale::Full => std::time::Duration::from_millis(1000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_shrinks() {
        assert_eq!(Scale::Quick.users(1_000_000), 100_000);
        assert_eq!(Scale::Full.users(1_000_000), 1_000_000);
        assert_eq!(Scale::Quick.users(5), 1);
        // Event rates are wall-clock quantities: figures keep them at
        // paper values regardless of scale (only populations shrink).
        assert!(Scale::Quick.duration() < Scale::Full.duration());
    }
}
