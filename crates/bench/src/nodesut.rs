//! A whole PEPC node as a [`SystemUnderTest`] — used by the migration
//! figures (8, 9), where the interesting behaviour (Demux parking,
//! per-user migration queues) lives above the slice.

use pepc::node::{NodeVerdict, PepcNode};
use pepc_net::Mbuf;
use pepc_workload::harness::SystemUnderTest;
use pepc_workload::signaling::SigEvent;
use pepc_workload::traffic::UserKeys;

/// Node-level system under test.
pub struct NodeSut {
    pub node: PepcNode,
    /// Forwarded packets that emerged from migration-queue drains; the
    /// measurement loop treats each as a forwarded packet.
    backlog: Vec<Mbuf>,
}

impl NodeSut {
    pub fn new(node: PepcNode) -> Self {
        NodeSut { node, backlog: Vec::new() }
    }

    /// Migrate `imsi` to `target` (the Figure 8/9 tick hook calls this).
    pub fn migrate(&mut self, imsi: u64, target: usize) -> bool {
        let ok = self.node.migrate(imsi, target);
        self.backlog.extend(self.node.take_migration_output());
        ok
    }
}

impl SystemUnderTest for NodeSut {
    fn signal(&mut self, ev: SigEvent) -> bool {
        match ev {
            SigEvent::Attach { imsi } => {
                self.node.attach(imsi);
                true
            }
            SigEvent::S1Handover { imsi, new_enb_teid, new_enb_ip } => {
                self.node.ctrl_event(pepc::ctrl::CtrlEvent::S1Handover { imsi, new_enb_teid, new_enb_ip })
            }
        }
    }

    fn process(&mut self, m: Mbuf) -> Option<Mbuf> {
        // Drained migration packets count as this call's output first, so
        // none are lost from the forwarded tally (the extra offered
        // packet is re-queued internally).
        if let Some(queued) = self.backlog.pop() {
            match self.node.process(m) {
                NodeVerdict::Forward(out) => self.backlog.push(out),
                NodeVerdict::Drop | NodeVerdict::Parked | NodeVerdict::Buffered => {}
            }
            return Some(queued);
        }
        match self.node.process(m) {
            NodeVerdict::Forward(out) => Some(out),
            NodeVerdict::Parked | NodeVerdict::Drop | NodeVerdict::Buffered => None,
        }
    }

    fn attach_all(&mut self, imsis: &[u64]) -> Vec<UserKeys> {
        let mut keys = Vec::with_capacity(imsis.len());
        for &imsi in imsis {
            let k = self.node.attach(imsi);
            self.node.ctrl_event(pepc::ctrl::CtrlEvent::S1Handover {
                imsi,
                new_enb_teid: 0xE000_0000 + (imsi as u32 & 0xFFFF),
                new_enb_ip: 0xC0A8_0001,
            });
            let ctx = self.node.slice(k).ctrl.context_of(imsi).expect("attached");
            let c = ctx.ctrl_read();
            keys.push(UserKeys { teid: c.tunnels.gw_teid, ue_ip: c.ue_ip });
        }
        // Make memberships visible on every slice.
        for k in 0..self.node.slice_count() {
            self.node.slice(k).sync_now();
        }
        keys
    }

    fn name(&self) -> &'static str {
        "PEPC node"
    }

    fn telemetry(&self) -> Option<pepc::MetricsSnapshot> {
        Some(self.node.metrics_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
    use pepc_workload::harness::{measure_with, MeasureOpts};
    use pepc_workload::traffic::TrafficGen;

    fn node_sut(slices: usize) -> NodeSut {
        let config = EpcConfig {
            slices,
            slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..SliceConfig::default() },
            ..EpcConfig::default()
        };
        NodeSut::new(PepcNode::new(config, None))
    }

    #[test]
    fn node_sut_forwards_traffic() {
        let mut sut = node_sut(2);
        let keys = sut.attach_all(&(0..32u64).collect::<Vec<_>>());
        let mut gen = TrafficGen::new(keys);
        let mut ok = 0;
        for _ in 0..1000 {
            let m = gen.next_packet(0);
            if let Some(out) = sut.process(m) {
                ok += 1;
                gen.recycle(out);
            }
        }
        assert_eq!(ok, 1000);
    }

    #[test]
    fn migrations_during_traffic_lose_nothing() {
        let mut sut = node_sut(2);
        let imsis: Vec<u64> = (0..64).collect();
        let keys = sut.attach_all(&imsis);
        let mut gen = TrafficGen::new(keys);
        let mut next_mig = 0usize;
        let m = measure_with(
            &mut sut,
            &mut gen,
            None,
            &MeasureOpts { duration: std::time::Duration::from_millis(100), ..Default::default() },
            |sut, _| {
                // Migrate one user per tick, ping-ponging between slices.
                let imsi = imsis[next_mig % imsis.len()];
                next_mig += 1;
                let cur = sut.node.demux().slice_for_imsi(imsi).unwrap();
                sut.migrate(imsi, 1 - cur);
            },
        );
        assert!(next_mig > 10, "migrations ran: {next_mig}");
        // Parked packets re-emerge: delivery stays essentially complete.
        assert!(m.delivery_ratio() > 0.999, "delivery {}", m.delivery_ratio());
        // Node-level telemetry rides along: both slices reported, and the
        // migrations show up in the per-slice histograms.
        let snap = m.snapshot.expect("node telemetry");
        assert_eq!(snap.slices.len(), 2);
        assert!(snap.conservation_holds());
        let migrations: u64 = snap.slices.iter().map(|s| s.migration_ns.count()).sum();
        assert!(migrations > 10, "migrations recorded: {migrations}");
    }
}
