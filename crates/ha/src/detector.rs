//! Missed-heartbeat failure detection.
//!
//! Every replication frame doubles as a liveness beacon (plus explicit
//! [`Heartbeat`](crate::replog::ReplKind::Heartbeat) records so an idle
//! control plane still beacons). The detector watches per-node last-seen
//! ticks and walks each node through `Alive → Suspect → Dead`:
//!
//! * `Suspect` after [`DetectorConfig::suspect_after`] silent ticks — the
//!   node may just be slow or its wire lossy; nothing is torn down yet;
//! * `Dead` after [`DetectorConfig::dead_after`] silent ticks — the
//!   coordinator commits to failover.
//!
//! `Dead` is sticky: once failover ran, a zombie heartbeat from a
//! partitioned-but-running node must not resurrect it (its users now live
//! elsewhere; resurrecting would split-brain the cluster).

/// Detector timing, in coordinator ticks.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Silent ticks before a node is suspected.
    pub suspect_after: u64,
    /// Silent ticks before a node is declared dead. Must exceed
    /// `suspect_after`.
    pub dead_after: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { suspect_after: 3, dead_after: 6 }
    }
}

/// A node's health as the detector sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    Alive,
    Suspect,
    Dead,
}

/// The per-node missed-heartbeat detector.
pub struct FailureDetector {
    cfg: DetectorConfig,
    last_seen: Vec<u64>,
    health: Vec<NodeHealth>,
}

impl FailureDetector {
    /// Track `n` nodes, all initially alive and seen "now" (tick 0).
    pub fn new(n: usize, cfg: DetectorConfig) -> Self {
        assert!(cfg.suspect_after > 0 && cfg.dead_after > cfg.suspect_after);
        FailureDetector { cfg, last_seen: vec![0; n], health: vec![NodeHealth::Alive; n] }
    }

    /// A liveness signal from `node` at `tick`. A suspected node recovers
    /// to alive; a dead node stays dead (failover already ran).
    pub fn observe_heartbeat(&mut self, node: usize, tick: u64) {
        if self.health[node] == NodeHealth::Dead {
            return;
        }
        self.last_seen[node] = self.last_seen[node].max(tick);
        self.health[node] = NodeHealth::Alive;
    }

    /// Advance to `now` and return the transitions that fired this tick,
    /// in node order.
    pub fn tick(&mut self, now: u64) -> Vec<(usize, NodeHealth)> {
        let mut transitions = Vec::new();
        for k in 0..self.health.len() {
            let silent = now.saturating_sub(self.last_seen[k]);
            let next = match self.health[k] {
                NodeHealth::Dead => continue,
                _ if silent >= self.cfg.dead_after => NodeHealth::Dead,
                _ if silent >= self.cfg.suspect_after => NodeHealth::Suspect,
                _ => NodeHealth::Alive,
            };
            if next != self.health[k] {
                self.health[k] = next;
                transitions.push((k, next));
            }
        }
        transitions
    }

    /// Current health of `node`.
    pub fn health(&self, node: usize) -> NodeHealth {
        self.health[node]
    }

    /// Last tick `node` was heard from.
    pub fn last_seen(&self, node: usize) -> u64 {
        self.last_seen[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> FailureDetector {
        FailureDetector::new(2, DetectorConfig { suspect_after: 3, dead_after: 6 })
    }

    #[test]
    fn silent_node_walks_suspect_then_dead() {
        let mut d = det();
        for t in 1..=10 {
            d.observe_heartbeat(0, t); // node 0 keeps beaconing; node 1 is silent
            let tr = d.tick(t);
            match t {
                3 => assert_eq!(tr, vec![(1, NodeHealth::Suspect)]),
                6 => assert_eq!(tr, vec![(1, NodeHealth::Dead)]),
                _ => assert!(tr.is_empty(), "unexpected transition at tick {t}: {tr:?}"),
            }
        }
        assert_eq!(d.health(0), NodeHealth::Alive);
        assert_eq!(d.health(1), NodeHealth::Dead);
    }

    #[test]
    fn suspect_recovers_on_heartbeat() {
        let mut d = det();
        d.observe_heartbeat(0, 4);
        assert_eq!(d.tick(4), vec![(1, NodeHealth::Suspect)]);
        d.observe_heartbeat(1, 5); // it was just slow
        d.observe_heartbeat(0, 5);
        assert!(d.tick(5).is_empty());
        assert_eq!(d.health(1), NodeHealth::Alive);
    }

    #[test]
    fn dead_is_sticky_against_zombie_heartbeats() {
        let mut d = det();
        d.observe_heartbeat(0, 6);
        let tr = d.tick(6);
        assert!(tr.contains(&(1, NodeHealth::Dead)));
        d.observe_heartbeat(1, 7); // partition healed, node 1 still running
        d.observe_heartbeat(0, 7);
        assert!(d.tick(7).is_empty());
        assert_eq!(d.health(1), NodeHealth::Dead, "failover already ran; no resurrection");
    }

    #[test]
    fn dead_fires_exactly_once() {
        let mut d = det();
        for t in 1..=20 {
            d.observe_heartbeat(0, t);
            let dead: Vec<_> = d.tick(t).into_iter().filter(|&(_, h)| h == NodeHealth::Dead).collect();
            if t == 6 {
                assert_eq!(dead, vec![(1, NodeHealth::Dead)]);
            } else {
                assert!(dead.is_empty());
            }
        }
    }
}
