//! The failover coordinator: a [`Cluster`] wrapped with live replication,
//! failure detection, and automated failover.
//!
//! `HaCluster` owns one replication [`Wire`] per node (node → standby).
//! Driving it is explicitly tick-based, like the rest of the fabric:
//!
//! 1. control events replicate **synchronously** — the event's dirty users
//!    are snapshotted, framed, and pumped across the wire before the call
//!    returns, so an acknowledged signaling change survives a crash that
//!    happens one instruction later;
//! 2. [`HaCluster::tick`] emits the periodic work — counter deltas every
//!    [`HaConfig::counter_interval`] ticks, a heartbeat every tick — pumps
//!    every wire into the [`StandbyStore`], and advances the
//!    [`FailureDetector`];
//! 3. when the detector declares a node dead, the coordinator repairs the
//!    Maglev table (only the dead node's keys re-steer) and adopts every
//!    replicated user onto its new home node, after which the blackout
//!    ends: redirect entries steer the old TEID / UE-IP regions to the
//!    survivors.
//!
//! Killing a node ([`HaCluster::kill_node`]) severs its wire — frames
//! still queued at the source are lost, exactly as a crashed NIC loses
//! them — and power-offs its region in the cluster, so data packets
//! blackhole (charged to `drop_failover`) until failover completes. The
//! wires take a [`FaultSpec`], so chaos tests can add probabilistic drop /
//! corruption / reordering on top of the crash itself.

use crate::detector::{DetectorConfig, FailureDetector, NodeHealth};
use crate::replog::{encode, ReplKind, ReplRecord};
use crate::standby::StandbyStore;
use pepc::cluster::Cluster;
use pepc::ctrl::CtrlEvent;
use pepc::node::NodeVerdict;
use pepc::recovery::UserRecord;
use pepc::EpcConfig;
use pepc_fabric::{FaultSpec, Port, PortPair, Wire};
use pepc_net::Mbuf;
use pepc_telemetry::{MetricsSnapshot, WireStat};
use std::collections::HashMap;

/// Tuning for the HA layer.
#[derive(Debug, Clone)]
pub struct HaConfig {
    /// Emit a counter delta for every user each this many ticks — the
    /// bound on charging data lost to a crash.
    pub counter_interval: u64,
    /// Detector timing (in the same ticks).
    pub detector: DetectorConfig,
    /// Fault injection template for the replication wires; node `k` runs
    /// with `seed + k` so wires fault independently but reproducibly.
    pub fault: FaultSpec,
    /// Replication wire queue depth, in frames.
    pub queue_depth: usize,
    /// Frames pumped per wire per pump call.
    pub pump_burst: usize,
    /// Abort any UE procedure that makes no signaling progress for this
    /// many ticks (mailboxes drain, half-created users roll back). `0`
    /// disables procedure supervision.
    pub procedure_timeout_ticks: u64,
}

impl Default for HaConfig {
    fn default() -> Self {
        HaConfig {
            counter_interval: 8,
            detector: DetectorConfig::default(),
            fault: FaultSpec::none(),
            queue_depth: 4096,
            pump_burst: 1024,
            procedure_timeout_ticks: 0,
        }
    }
}

/// What one completed failover did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverReport {
    /// The node that died.
    pub node: usize,
    /// Tick at which the detector declared it dead (failover ran within
    /// the same tick).
    pub detected_tick: u64,
    /// Users promoted onto survivors.
    pub users_recovered: usize,
    /// Worst counter age among recovered users, measured against the last
    /// tick the dead node was heard from — the charging data actually
    /// lost, bounded by [`HaConfig::counter_interval`] on a clean wire.
    pub max_counter_staleness: u64,
}

/// A cluster with live replication and automated failover.
pub struct HaCluster {
    cluster: Cluster,
    cfg: HaConfig,
    tick: u64,
    /// Per-node last-issued replication sequence number.
    seq: Vec<u64>,
    /// Node-side ends of the replication wires.
    tx: Vec<Port>,
    wires: Vec<Wire>,
    /// Standby-side ends.
    rx: Vec<Port>,
    standby: StandbyStore,
    detector: FailureDetector,
    /// Nodes the test harness crashed (they stop emitting; their wire is
    /// severed). Distinct from `Cluster::is_dead`, which flips at the same
    /// moment but expresses the data-plane consequence.
    killed: Vec<bool>,
    /// IMSI → node currently hosting it (updated by adoption).
    owner: HashMap<u64, usize>,
    failovers: Vec<FailoverReport>,
    scratch: Vec<Mbuf>,
}

impl HaCluster {
    /// Build `n` nodes from a template config with a replication wire per
    /// node.
    pub fn new(n: usize, template: EpcConfig, cfg: HaConfig) -> Self {
        Self::with_backends(n, template, cfg, None)
    }

    /// Build `n` nodes sharing HSS/PCRF backends — enables the full
    /// S1AP/NAS signaling path via [`HaCluster::node_s1ap`].
    pub fn with_backends(
        n: usize,
        template: EpcConfig,
        cfg: HaConfig,
        backends: Option<(std::sync::Arc<pepc_backend::Hss>, std::sync::Arc<pepc_backend::Pcrf>)>,
    ) -> Self {
        let cluster = Cluster::new(n, template, backends);
        let mut tx = Vec::with_capacity(n);
        let mut wires = Vec::with_capacity(n);
        let mut rx = Vec::with_capacity(n);
        for k in 0..n {
            let (src, src_far) = PortPair::new(cfg.queue_depth);
            let (sink_far, sink) = PortPair::new(cfg.queue_depth);
            let spec = FaultSpec { seed: cfg.fault.seed.wrapping_add(k as u64), ..cfg.fault.clone() };
            tx.push(src);
            wires.push(Wire::new(src_far, sink_far, spec));
            rx.push(sink);
        }
        HaCluster {
            cluster,
            detector: FailureDetector::new(n, cfg.detector),
            standby: StandbyStore::new(n),
            cfg,
            tick: 0,
            seq: vec![0; n],
            tx,
            wires,
            rx,
            killed: vec![false; n],
            owner: HashMap::new(),
            failovers: Vec::new(),
            scratch: Vec::with_capacity(64),
        }
    }

    /// Attach a subscriber on its home node and replicate it synchronously.
    pub fn attach(&mut self, imsi: u64) -> usize {
        let k = self.cluster.attach(imsi);
        self.owner.insert(imsi, k);
        self.replicate_node(k);
        k
    }

    /// Apply a signaling event on the subscriber's current node (home node
    /// originally; the adopting survivor after a failover) and replicate
    /// the resulting state synchronously. Returns `false` if the event was
    /// rejected — including signaling for a user whose node just died and
    /// has not been failed over yet.
    pub fn ctrl_event(&mut self, ev: CtrlEvent) -> bool {
        let imsi = match ev {
            CtrlEvent::Attach { imsi } => {
                self.attach(imsi);
                return true;
            }
            CtrlEvent::S1Handover { imsi, .. }
            | CtrlEvent::ModifyBearer { imsi, .. }
            | CtrlEvent::Detach { imsi }
            | CtrlEvent::Release { imsi } => imsi,
        };
        let Some(&k) = self.owner.get(&imsi) else { return false };
        if self.cluster.is_dead(k) {
            return false; // signaling lost in the blackout window
        }
        let ok = self.cluster.node(k).ctrl_event(ev);
        if ok && matches!(ev, CtrlEvent::Detach { .. }) {
            self.owner.remove(&imsi);
        }
        self.replicate_node(k);
        ok
    }

    /// Route one data packet through the cluster.
    pub fn process(&mut self, m: Mbuf) -> NodeVerdict {
        self.cluster.process(m)
    }

    /// Deliver one S1AP PDU to node `k` (the eNodeB's S1 association pins
    /// the serving node) and replicate the resulting state synchronously.
    /// Signaling to a killed or dead node is lost in the blackout window
    /// and returns no responses, like any packet to a crashed box.
    pub fn node_s1ap(&mut self, k: usize, pdu: &pepc_sigproto::s1ap::S1apPdu) -> Vec<pepc_sigproto::s1ap::S1apPdu> {
        if self.killed[k] || self.cluster.is_dead(k) {
            return vec![];
        }
        // An attach starting here makes node `k` the owner (the UE's
        // signaling connection terminates on it).
        if let pepc_sigproto::s1ap::S1apPdu::InitialUeMessage { nas, .. } = pdu {
            if let Ok(pepc_sigproto::nas::NasMsg::AttachRequest { imsi, .. }) = pepc_sigproto::nas::NasMsg::decode(nas)
            {
                self.owner.insert(imsi, k);
            }
        }
        let rsp = self.cluster.node(k).handle_s1ap(pdu);
        self.replicate_node(k);
        rsp
    }

    /// Advance one tick: emit periodic replication (counter deltas,
    /// heartbeat), pump every wire into the standby, run the detector, and
    /// fail over any node it declared dead.
    ///
    /// This is a fixed composition of the stepwise API below; the
    /// deterministic simulator drives the four phases individually so a
    /// seeded scheduler can explore their interleavings.
    pub fn tick(&mut self) {
        self.advance_tick();
        for k in 0..self.cluster.node_count() {
            self.emit_periodic(k);
        }
        for k in 0..self.cluster.node_count() {
            self.pump_wire(k);
        }
        self.run_detector();
    }

    // -- stepwise tick phases (simulation hooks) -------------------------------

    /// Phase 1 of a tick: advance the logical clock. Returns the new tick.
    pub fn advance_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Phase 2 of a tick, per node: emit node `k`'s periodic replication —
    /// dirty-user snapshots, counter deltas when the interval divides the
    /// tick, and a heartbeat. No-op for killed or dead nodes.
    pub fn emit_periodic(&mut self, k: usize) {
        if self.killed[k] || self.cluster.is_dead(k) {
            return;
        }
        // Supervise procedures in coordinator ticks: stamp the clock every
        // tick; expiry (which may roll back half-created users, dirtying
        // them) runs before the dirty drain below so rollbacks replicate
        // in the same tick.
        let (now, timeout) = (self.tick, self.cfg.procedure_timeout_ticks);
        self.cluster.node(k).note_tick(now);
        if timeout > 0 {
            self.cluster.node(k).expire_procedures(now, timeout);
        }
        self.replicate_dirty(k);
        if self.tick.is_multiple_of(self.cfg.counter_interval) {
            self.emit_counter_deltas(k);
        }
        self.emit(k, ReplKind::Heartbeat, 0, None);
    }

    /// Phase 3 of a tick, per node: pump node `k`'s replication wire and
    /// ingest whatever reached the standby.
    pub fn pump_wire(&mut self, k: usize) {
        self.pump_node(k);
    }

    /// Phase 4 of a tick: advance the failure detector and fail over any
    /// node it just declared dead.
    pub fn run_detector(&mut self) {
        let transitions = self.detector.tick(self.tick);
        for (k, health) in transitions {
            if health == NodeHealth::Dead {
                self.failover(k);
            }
        }
    }

    /// Crash node `k`: its replication wire is severed (frames queued at
    /// the source are lost with it) and its region starts blackholing.
    /// Recovery happens automatically once the detector declares it dead.
    pub fn kill_node(&mut self, k: usize) {
        assert!(!self.killed[k], "node {k} already killed");
        self.killed[k] = true;
        self.wires[k].sever();
        self.cluster.power_off(k);
    }

    /// Detector's view of node `k`.
    pub fn health(&self, k: usize) -> NodeHealth {
        self.detector.health(k)
    }

    /// Completed failovers, in order.
    pub fn failovers(&self) -> &[FailoverReport] {
        &self.failovers
    }

    /// The standby store (assertions, staleness queries).
    pub fn standby(&self) -> &StandbyStore {
        &self.standby
    }

    /// The wrapped cluster.
    pub fn cluster(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Immutable view of the wrapped cluster (oracles, inspection).
    pub fn cluster_ref(&self) -> &Cluster {
        &self.cluster
    }

    /// Whether the harness crashed node `k`.
    pub fn is_killed(&self, k: usize) -> bool {
        self.killed[k]
    }

    /// The configured counter-delta interval (staleness bound on a clean
    /// wire).
    pub fn counter_interval(&self) -> u64 {
        self.cfg.counter_interval
    }

    /// Node `k`'s replication wire (fault-scenario control: partition,
    /// heal, mid-run `FaultSpec` changes).
    pub fn wire_mut(&mut self, k: usize) -> &mut Wire {
        &mut self.wires[k]
    }

    /// Substitute the clock on every node and wire (simulation harness).
    pub fn set_clock(&mut self, clock: pepc_fabric::Clock) {
        self.cluster.set_clock(clock);
        for w in &mut self.wires {
            w.set_clock(clock);
        }
    }

    /// Current coordinator tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Node currently hosting `imsi`, if attached.
    pub fn owner_of(&self, imsi: u64) -> Option<usize> {
        self.owner.get(&imsi).copied()
    }

    /// Cluster-wide metrics with the replication wires' stats attached.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.cluster.metrics_snapshot();
        snap.wires = self
            .wires
            .iter()
            .enumerate()
            .map(|(k, w)| {
                let s = w.stats();
                WireStat {
                    name: format!("repl:node{k}"),
                    forwarded: s.forwarded,
                    dropped: s.dropped,
                    corrupted: s.corrupted,
                    reordered: s.reordered,
                    duplicated: s.duplicated,
                    delayed: s.delayed,
                    rate_limited: s.rate_limited,
                }
            })
            .collect();
        snap
    }

    // -- replication plumbing --------------------------------------------------

    /// Snapshot node `k`'s dirty users into the log and pump synchronously.
    fn replicate_node(&mut self, k: usize) {
        self.replicate_dirty(k);
        self.pump_node(k);
    }

    /// Drain the dirty-user hook of every slice on node `k`: a user that
    /// still resolves replicates as a full snapshot; one that no longer
    /// exists was detached and replicates as a delete.
    fn replicate_dirty(&mut self, k: usize) {
        if self.killed[k] {
            return;
        }
        for s in 0..self.cluster.node(k).slice_count() {
            let dirty = self.cluster.node(k).slice(s).ctrl.take_dirty_users();
            for imsi in dirty {
                let user = self
                    .cluster
                    .node(k)
                    .slice(s)
                    .ctrl
                    .context_of(imsi)
                    .map(|ctx| UserRecord { ctrl: ctx.ctrl_read().clone(), counters: ctx.counters() });
                match user {
                    Some(u) => self.emit(k, ReplKind::CtrlSnapshot, imsi, Some(u)),
                    None => self.emit(k, ReplKind::CtrlDelete, imsi, None),
                }
            }
        }
    }

    /// Refresh every user's counters on node `k` (the periodic delta).
    fn emit_counter_deltas(&mut self, k: usize) {
        for s in 0..self.cluster.node(k).slice_count() {
            let mut imsis = self.cluster.node(k).slice(s).ctrl.imsis();
            imsis.sort_unstable(); // HashMap order would break determinism
            for imsi in imsis {
                if let Some(ctx) = self.cluster.node(k).slice(s).ctrl.context_of(imsi) {
                    let u = UserRecord { ctrl: ctx.ctrl_read().clone(), counters: ctx.counters() };
                    self.emit(k, ReplKind::CounterDelta, imsi, Some(u));
                }
            }
        }
    }

    /// Frame and transmit one record on node `k`'s wire.
    fn emit(&mut self, k: usize, kind: ReplKind, imsi: u64, user: Option<UserRecord>) {
        self.seq[k] += 1;
        let rec = ReplRecord { kind, node: k as u32, seq: self.seq[k], tick: self.tick, imsi, user };
        self.tx[k].tx(Mbuf::from_payload(&encode(&rec)));
    }

    /// Pump node `k`'s wire and ingest whatever arrived at the standby.
    fn pump_node(&mut self, k: usize) {
        self.wires[k].pump(self.cfg.pump_burst);
        loop {
            self.scratch.clear();
            self.rx[k].rx_burst(&mut self.scratch, self.cfg.pump_burst);
            if self.scratch.is_empty() {
                return;
            }
            for m in self.scratch.drain(..) {
                if let Some((node, _)) = self.standby.ingest(m.data()) {
                    self.detector.observe_heartbeat(node, self.tick);
                }
            }
        }
    }

    /// The detector declared `k` dead: repair steering, then promote every
    /// replicated user onto its post-repair home node.
    fn failover(&mut self, k: usize) {
        if !self.cluster.is_dead(k) {
            if self.cluster.live_count() <= 1 {
                // Detector declared the last live node dead (every
                // heartbeat starved — e.g. a shrunk schedule deleting all
                // emits). There is no survivor to adopt onto; acting
                // would power off the whole cluster, so ignore the
                // detector rather than panic.
                return;
            }
            // Detector fired without the harness killing the node first
            // (e.g. a fully partitioned but running node): treat it as
            // dead for data too — split-brain forwarding would be worse.
            self.cluster.power_off(k);
        }
        self.cluster.repair_steering(k);
        let users = self.standby.users_of(k);
        let users_recovered = users.len();
        let last_contact = self.detector.last_seen(k);
        let max_counter_staleness = self.standby.max_counter_staleness(k, last_contact);
        for (rec, _tick) in users {
            let imsi = rec.ctrl.imsi;
            let target = self.cluster.home_node(imsi);
            self.cluster.adopt_user(target, rec.ctrl, rec.counters);
            // Adoption marks the user dirty on the survivor; replicate it
            // from its new home so the standby converges.
            self.owner.insert(imsi, target);
        }
        for t in 0..self.cluster.node_count() {
            if !self.killed[t] && !self.cluster.is_dead(t) {
                self.replicate_node(t);
            }
        }
        self.failovers.push(FailoverReport {
            node: k,
            detected_tick: self.tick,
            users_recovered,
            max_counter_staleness,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pepc::config::{BatchingConfig, SliceConfig};
    use pepc::ctrl::CtrlEvent;
    use pepc_net::gtp::encap_gtpu;
    use pepc_net::ipv4::IpProto;
    use pepc_net::{Ipv4Hdr, IPV4_HDR_LEN};

    fn ha(n: usize, cfg: HaConfig) -> HaCluster {
        let template = EpcConfig {
            slices: 2,
            slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..SliceConfig::default() },
            ..EpcConfig::default()
        };
        HaCluster::new(n, template, cfg)
    }

    fn keys_of(c: &mut HaCluster, imsi: u64) -> (u32, u32) {
        let k = c.owner_of(imsi).unwrap();
        let node = c.cluster().node(k);
        let s = node.demux().slice_for_imsi(imsi).unwrap();
        let ctx = node.slice(s).ctrl.context_of(imsi).unwrap();
        let g = ctx.ctrl_read();
        (g.tunnels.gw_teid, g.ue_ip)
    }

    fn uplink(teid: u32, ue_ip: u32) -> Mbuf {
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN + 8];
        Ipv4Hdr::new(ue_ip, 0x08080808, IpProto::Udp, 8).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
        m.extend(&hdr);
        encap_gtpu(&mut m, 0xC0A80001, 0x0AFE0001, teid).unwrap();
        m
    }

    fn attach_with_bearer(c: &mut HaCluster, imsi: u64) {
        c.attach(imsi);
        assert!(c.ctrl_event(CtrlEvent::S1Handover {
            imsi,
            new_enb_teid: 0xE000 + imsi as u32,
            new_enb_ip: 0xC0A80001,
        }));
    }

    #[test]
    fn control_events_replicate_synchronously() {
        let mut c = ha(2, HaConfig::default());
        attach_with_bearer(&mut c, 7);
        let k = c.owner_of(7).unwrap();
        // No tick has run, yet the standby already has the user.
        assert_eq!(c.standby().user_count(k), 1);
        let (rec, _) = &c.standby().users_of(k)[0];
        assert_eq!(rec.ctrl.tunnels.enb_teid, 0xE007);
    }

    #[test]
    fn detach_replicates_as_delete() {
        let mut c = ha(2, HaConfig::default());
        attach_with_bearer(&mut c, 7);
        let k = c.owner_of(7).unwrap();
        assert!(c.ctrl_event(CtrlEvent::Detach { imsi: 7 }));
        assert_eq!(c.standby().user_count(k), 0);
        assert_eq!(c.owner_of(7), None);
    }

    #[test]
    fn counters_replicate_on_the_interval() {
        let cfg = HaConfig { counter_interval: 4, ..HaConfig::default() };
        let mut c = ha(2, cfg);
        attach_with_bearer(&mut c, 7);
        let k = c.owner_of(7).unwrap();
        let (teid, ue_ip) = keys_of(&mut c, 7);
        for _ in 0..10 {
            assert!(c.process(uplink(teid, ue_ip)).is_forward());
        }
        // Before the interval elapses the standby still has the counters
        // from the synchronous attach snapshot.
        assert_eq!(c.standby().users_of(k)[0].0.counters.uplink_packets, 0);
        for _ in 0..4 {
            c.tick();
        }
        assert_eq!(c.standby().users_of(k)[0].0.counters.uplink_packets, 10);
    }

    #[test]
    fn kill_detect_failover_end_to_end() {
        let cfg = HaConfig { counter_interval: 2, ..HaConfig::default() };
        let dead_after = cfg.detector.dead_after;
        let mut c = ha(3, cfg);
        for imsi in 0..24u64 {
            attach_with_bearer(&mut c, imsi);
        }
        c.tick();
        let victim = c.owner_of(0).unwrap();
        let victims: Vec<u64> = (0..24).filter(|&i| c.owner_of(i) == Some(victim)).collect();
        let (teid, ue_ip) = keys_of(&mut c, 0);

        c.kill_node(victim);
        // Blackout: the victim's region drops until the detector fires.
        assert!(!c.process(uplink(teid, ue_ip)).is_forward());
        for _ in 0..dead_after {
            c.tick();
        }
        assert_eq!(c.health(victim), NodeHealth::Dead);
        assert_eq!(c.failovers().len(), 1);
        let report = c.failovers()[0];
        assert_eq!(report.node, victim);
        assert_eq!(report.users_recovered, victims.len());
        assert!(report.max_counter_staleness <= 2, "staleness {}", report.max_counter_staleness);

        // Every victim user forwards again, on a survivor.
        for &imsi in &victims {
            let new_home = c.owner_of(imsi).unwrap();
            assert_ne!(new_home, victim, "imsi {imsi} still on the dead node");
            let (teid, ue_ip) = keys_of(&mut c, imsi);
            assert!(c.process(uplink(teid, ue_ip)).is_forward(), "imsi {imsi} after failover");
        }
        let snap = c.metrics_snapshot();
        assert!(snap.conservation_holds());
        assert_eq!(snap.data_totals().drop_failover, 1);
        assert_eq!(snap.wires.len(), 3);
        assert!(snap.wires.iter().all(|w| w.forwarded > 0), "all wires carried replication");
    }

    #[test]
    fn survivors_keep_forwarding_through_the_blackout() {
        let mut c = ha(3, HaConfig::default());
        for imsi in 0..24u64 {
            attach_with_bearer(&mut c, imsi);
        }
        let victim = c.owner_of(0).unwrap();
        let survivor_imsi = (0..24).find(|&i| c.owner_of(i) != Some(victim)).unwrap();
        let (teid, ue_ip) = keys_of(&mut c, survivor_imsi);
        c.kill_node(victim);
        assert!(c.process(uplink(teid, ue_ip)).is_forward(), "survivors unaffected");
    }
}
