//! The standby store — the receive side of the replication log.
//!
//! One [`StandbyStore`] mirrors every node of a cluster: per node it keeps
//! the latest known [`UserRecord`] per IMSI plus enough sequence
//! bookkeeping to survive the realities of a faulty fabric:
//!
//! * **reordering** — each user half (control / counters) remembers the
//!   sequence number that produced it; an older frame arriving late is
//!   counted as stale and ignored, never applied backwards;
//! * **loss** — gaps are `max_seq - frames_received`, robust to arrival
//!   order; a dropped control snapshot heals at the next counter delta,
//!   which carries the full record;
//! * **corruption** — undecodable frames are counted and skipped
//!   ([`crate::replog::decode`] never panics);
//! * **resurrection** — a delete tombstones the IMSI at its sequence
//!   number, so a reordered older snapshot cannot revive a detached user.

use crate::replog::{decode, ReplKind, ReplRecord};
use pepc::recovery::UserRecord;
use std::collections::BTreeMap;

/// Latest replicated state of one user.
struct StandbyUser {
    record: UserRecord,
    /// Sequence that last wrote `record.ctrl`.
    ctrl_seq: u64,
    /// Sequence that last wrote `record.counters`.
    counter_seq: u64,
    /// Coordinator tick at which `record.counters` was captured.
    counter_tick: u64,
}

/// The replica of one node's user population.
#[derive(Default)]
struct NodeReplica {
    /// BTreeMap: adoption order after a failover is deterministic.
    users: BTreeMap<u64, StandbyUser>,
    /// IMSI → sequence of its delete.
    tombstones: BTreeMap<u64, u64>,
    /// Highest sequence number seen.
    max_seq: u64,
    /// Frames received (any kind).
    received: u64,
    /// Frames ignored as older than already-applied state.
    stale: u64,
}

/// Standby replicas for a whole cluster.
pub struct StandbyStore {
    replicas: Vec<NodeReplica>,
    corrupt: u64,
}

impl StandbyStore {
    /// A store mirroring `n` nodes, all initially empty.
    pub fn new(n: usize) -> Self {
        StandbyStore { replicas: (0..n).map(|_| NodeReplica::default()).collect(), corrupt: 0 }
    }

    /// Decode and apply one frame off the wire. Returns the originating
    /// node and frame kind on success (the caller feeds this to its
    /// failure detector as a liveness signal); `None` means the frame was
    /// corrupt and was counted, not applied.
    pub fn ingest(&mut self, bytes: &[u8]) -> Option<(usize, ReplKind)> {
        let rec = match decode(bytes) {
            Ok(rec) => rec,
            Err(_) => {
                self.corrupt += 1;
                return None;
            }
        };
        let node = rec.node as usize;
        if node >= self.replicas.len() {
            self.corrupt += 1;
            return None;
        }
        let kind = rec.kind;
        self.apply(rec);
        Some((node, kind))
    }

    /// Apply one decoded record.
    pub fn apply(&mut self, rec: ReplRecord) {
        let r = &mut self.replicas[rec.node as usize];
        r.received += 1;
        r.max_seq = r.max_seq.max(rec.seq);
        match rec.kind {
            ReplKind::Heartbeat => {}
            ReplKind::CtrlDelete => {
                if let Some(u) = r.users.get(&rec.imsi) {
                    if u.ctrl_seq > rec.seq {
                        // A reordered delete from before the user's latest
                        // state; the live node clearly re-learned the user.
                        r.stale += 1;
                        return;
                    }
                    r.users.remove(&rec.imsi);
                }
                let t = r.tombstones.entry(rec.imsi).or_insert(0);
                *t = (*t).max(rec.seq);
            }
            ReplKind::CtrlSnapshot | ReplKind::CounterDelta => {
                let Some(user) = rec.user else {
                    // A state record without a payload only happens via
                    // corruption that still parsed; drop it.
                    r.stale += 1;
                    return;
                };
                if r.tombstones.get(&rec.imsi).is_some_and(|&t| t > rec.seq) {
                    r.stale += 1; // user was deleted after this was emitted
                    return;
                }
                match r.users.get_mut(&rec.imsi) {
                    None => {
                        r.users.insert(
                            rec.imsi,
                            StandbyUser {
                                record: user,
                                ctrl_seq: rec.seq,
                                counter_seq: rec.seq,
                                counter_tick: rec.tick,
                            },
                        );
                    }
                    Some(e) => {
                        // Newest sequence wins, per half: both kinds carry
                        // the full record captured at emission time.
                        let mut applied = false;
                        if rec.seq > e.ctrl_seq {
                            e.record.ctrl = user.ctrl;
                            e.ctrl_seq = rec.seq;
                            applied = true;
                        }
                        if rec.seq > e.counter_seq {
                            e.record.counters = user.counters;
                            e.counter_seq = rec.seq;
                            e.counter_tick = rec.tick;
                            applied = true;
                        }
                        if !applied {
                            r.stale += 1;
                        }
                    }
                }
            }
        }
    }

    /// The replicated users of `node`, ascending by IMSI, each with the
    /// tick its counters were captured at. This is what a failover adopts.
    pub fn users_of(&self, node: usize) -> Vec<(UserRecord, u64)> {
        self.replicas[node].users.values().map(|u| (u.record.clone(), u.counter_tick)).collect()
    }

    /// Replicated user count for `node`.
    pub fn user_count(&self, node: usize) -> usize {
        self.replicas[node].users.len()
    }

    /// Worst-case counter age for `node`'s users, measured at tick `now`:
    /// how much charging data failover would lose if the node died at
    /// `now`. Bounded by the replication interval on a lossless wire.
    pub fn max_counter_staleness(&self, node: usize, now: u64) -> u64 {
        self.replicas[node].users.values().map(|u| now.saturating_sub(u.counter_tick)).max().unwrap_or(0)
    }

    /// Highest sequence number seen from `node`.
    pub fn max_seq(&self, node: usize) -> u64 {
        self.replicas[node].max_seq
    }

    /// Frames from `node` that never arrived (dropped on the wire).
    pub fn gaps(&self, node: usize) -> u64 {
        let r = &self.replicas[node];
        r.max_seq.saturating_sub(r.received)
    }

    /// Frames from `node` ignored as older than applied state.
    pub fn stale(&self, node: usize) -> u64 {
        self.replicas[node].stale
    }

    /// Undecodable frames swallowed, store-wide.
    pub fn corrupt(&self) -> u64 {
        self.corrupt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replog::encode;
    use pepc::{ControlState, CounterState};

    fn rec(kind: ReplKind, seq: u64, tick: u64, imsi: u64, uplink: u64) -> ReplRecord {
        let user = match kind {
            ReplKind::CtrlSnapshot | ReplKind::CounterDelta => {
                let ctrl = ControlState::new(imsi);
                let counters = CounterState { uplink_packets: uplink, ..CounterState::default() };
                Some(UserRecord { ctrl, counters })
            }
            _ => None,
        };
        ReplRecord { kind, node: 0, seq, tick, imsi, user }
    }

    #[test]
    fn newest_sequence_wins_under_reordering() {
        let mut s = StandbyStore::new(1);
        s.apply(rec(ReplKind::CounterDelta, 5, 50, 7, 500));
        s.apply(rec(ReplKind::CounterDelta, 3, 30, 7, 300)); // late arrival
        let users = s.users_of(0);
        assert_eq!(users.len(), 1);
        assert_eq!(users[0].0.counters.uplink_packets, 500);
        assert_eq!(users[0].1, 50, "counter tick tracks the applied frame");
        assert_eq!(s.stale(0), 1);
    }

    #[test]
    fn tombstone_blocks_resurrection() {
        let mut s = StandbyStore::new(1);
        s.apply(rec(ReplKind::CtrlSnapshot, 1, 1, 7, 0));
        s.apply(rec(ReplKind::CtrlDelete, 4, 4, 7, 0));
        s.apply(rec(ReplKind::CtrlSnapshot, 2, 2, 7, 0)); // reordered, pre-delete
        assert_eq!(s.user_count(0), 0, "deleted user must not come back");
        // But a genuinely newer snapshot (re-attach) does apply.
        s.apply(rec(ReplKind::CtrlSnapshot, 6, 6, 7, 0));
        assert_eq!(s.user_count(0), 1);
    }

    #[test]
    fn counter_delta_heals_a_dropped_ctrl_snapshot() {
        let mut s = StandbyStore::new(1);
        // The CtrlSnapshot (seq 1) was dropped by the wire; the periodic
        // delta still carries the full record.
        s.apply(rec(ReplKind::CounterDelta, 2, 8, 9, 42));
        let users = s.users_of(0);
        assert_eq!(users[0].0.ctrl.imsi, 9);
        assert_eq!(users[0].0.counters.uplink_packets, 42);
        assert_eq!(s.gaps(0), 1, "the dropped frame is visible as a gap");
    }

    #[test]
    fn corruption_is_counted_not_applied() {
        let mut s = StandbyStore::new(1);
        assert!(s.ingest(b"").is_none());
        assert!(s.ingest(b"\x7fgarbage").is_none());
        let mut bytes = encode(&rec(ReplKind::CtrlSnapshot, 1, 1, 7, 0));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let _ = s.ingest(&bytes); // may or may not decode; must not panic
        assert!(s.corrupt() >= 2);
    }

    #[test]
    fn staleness_tracks_the_oldest_counters() {
        let mut s = StandbyStore::new(1);
        s.apply(rec(ReplKind::CounterDelta, 1, 10, 1, 0));
        s.apply(rec(ReplKind::CounterDelta, 2, 18, 2, 0));
        assert_eq!(s.max_counter_staleness(0, 20), 10);
        assert_eq!(s.max_counter_staleness(0, 5), 0, "saturates, never underflows");
    }
}
