//! The replication log — sequence-numbered per-user state deltas.
//!
//! Because PEPC consolidates each user's state in one slice, replicating a
//! user is replicating two structs: [`pepc::state::ControlState`] (written
//! only by the control thread, on signaling events) and
//! [`pepc::state::CounterState`] (written only by the data thread, on every
//! packet). The log exploits the asymmetry:
//!
//! * **control events are rare and precious** — every one emits a full
//!   [`ReplKind::CtrlSnapshot`] record synchronously, so an acknowledged
//!   signaling change is never lost;
//! * **counters churn on every packet** — they ship as periodic
//!   [`ReplKind::CounterDelta`] records, bounding lost charging data to at
//!   most one replication interval instead of paying a record per packet.
//!
//! Records reuse the checkpoint serialization ([`pepc::recovery::UserRecord`])
//! so a standby replica and an on-disk checkpoint are the same bytes — one
//! restore path serves both. The frame format mirrors the checkpoint
//! format: a raw one-byte version header, then a JSON body.

use pepc::recovery::UserRecord;
use serde::{Deserialize, Serialize};

/// Current replication frame format version.
pub const REPLOG_VERSION: u8 = 1;

/// What a replication record carries.
///
/// (A unit-only enum: the payload lives in [`ReplRecord::user`] so the
/// frame stays a flat named-field struct on the wire.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplKind {
    /// Full user record, emitted synchronously on every control event.
    CtrlSnapshot,
    /// Full user record, emitted every replication interval to refresh
    /// the charging counters.
    CounterDelta,
    /// The user detached; the standby must forget it.
    CtrlDelete,
    /// Liveness beacon; carries no user.
    Heartbeat,
}

/// One frame of the replication log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplRecord {
    pub kind: ReplKind,
    /// Originating node index.
    pub node: u32,
    /// Per-node sequence number, strictly increasing from 1. The standby
    /// uses it to detect gaps (dropped frames) and to resolve reordered
    /// frames (newest sequence wins per user).
    pub seq: u64,
    /// Coordinator tick at emission; drives counter-staleness accounting.
    pub tick: u64,
    /// Subject IMSI (0 for heartbeats).
    pub imsi: u64,
    /// The user's consolidated state, for `CtrlSnapshot` / `CounterDelta`.
    pub user: Option<UserRecord>,
}

/// Replication frame decode errors.
#[derive(Debug)]
pub enum ReplogError {
    /// Not a parsable frame (truncated, corrupted, not JSON, …).
    Malformed(String),
    /// The version header byte names a format this build does not speak.
    WrongVersion { found: u8 },
}

impl std::fmt::Display for ReplogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplogError::Malformed(e) => write!(f, "malformed replication frame: {e}"),
            ReplogError::WrongVersion { found } => {
                write!(f, "replication frame version {found}, expected {REPLOG_VERSION}")
            }
        }
    }
}

impl std::error::Error for ReplogError {}

/// Serialize a record: raw version byte, then JSON body.
pub fn encode(rec: &ReplRecord) -> Vec<u8> {
    let body = serde_json::to_vec(rec).expect("replication record types always serialize");
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(REPLOG_VERSION);
    out.extend_from_slice(&body);
    out
}

/// Parse a frame. Corruption anywhere — header, JSON syntax, missing
/// fields — comes back as an error, never a panic: frames cross a [`Wire`]
/// that may flip bytes.
///
/// [`Wire`]: pepc_fabric::Wire
pub fn decode(bytes: &[u8]) -> Result<ReplRecord, ReplogError> {
    let (&header, body) = bytes.split_first().ok_or_else(|| ReplogError::Malformed("empty frame".into()))?;
    if header != REPLOG_VERSION {
        return Err(ReplogError::WrongVersion { found: header });
    }
    serde_json::from_slice(body).map_err(|e| ReplogError::Malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: ReplKind, seq: u64) -> ReplRecord {
        ReplRecord { kind, node: 2, seq, tick: 40, imsi: 404_01_0000000007, user: None }
    }

    #[test]
    fn roundtrips_heartbeat_and_delete() {
        for kind in [ReplKind::Heartbeat, ReplKind::CtrlDelete] {
            let rec = sample(kind, 9);
            let back = decode(&encode(&rec)).unwrap();
            assert_eq!(back.kind, kind);
            assert_eq!(back.seq, 9);
            assert_eq!(back.node, 2);
            assert_eq!(back.imsi, 404_01_0000000007);
            assert!(back.user.is_none());
        }
    }

    #[test]
    fn roundtrips_a_full_user_record() {
        let mut ctrl = pepc::ControlState::new(404_01_0000000001);
        ctrl.ue_ip = 0x0A00_0001;
        ctrl.tunnels.gw_teid = 0x1000_0001;
        let counters = pepc::CounterState { uplink_packets: 17, ..Default::default() };
        let rec = ReplRecord {
            kind: ReplKind::CtrlSnapshot,
            node: 0,
            seq: 1,
            tick: 3,
            imsi: ctrl.imsi,
            user: Some(UserRecord { ctrl: ctrl.clone(), counters }),
        };
        let back = decode(&encode(&rec)).unwrap();
        let user = back.user.unwrap();
        assert_eq!(user.ctrl, ctrl);
        assert_eq!(user.counters, counters);
    }

    #[test]
    fn version_byte_gates_the_frame() {
        let bytes = encode(&sample(ReplKind::Heartbeat, 1));
        assert_eq!(bytes[0], REPLOG_VERSION);
        let mut wrong = bytes.clone();
        wrong[0] = 0x7F;
        assert!(matches!(decode(&wrong), Err(ReplogError::WrongVersion { found: 0x7F })));
    }

    #[test]
    fn truncation_and_corruption_never_panic() {
        let bytes = encode(&sample(ReplKind::CtrlSnapshot, 5));
        assert!(decode(&[]).is_err());
        for cut in 0..bytes.len() {
            let _ = decode(&bytes[..cut]); // must not panic
        }
        for i in 1..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            let _ = decode(&corrupt); // must not panic
        }
    }
}
