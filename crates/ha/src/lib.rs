// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! # pepc-ha — live replication, failure detection, and automated failover
//!
//! The paper's §8 observes that consolidating a user's state in one slice
//! collapses EPC fault tolerance to a single failure mode: "In PEPC, there
//! is primarily a single failure mode (a PEPC node fails)", to be handled
//! by borrowing from middlebox fault-tolerance work. [`pepc::recovery`]
//! made that concrete for cold checkpoints; this crate makes it *live*:
//!
//! * [`replog`] — the replication log: sequence-numbered per-user records
//!   (full control snapshots on every signaling event, periodic counter
//!   deltas) framed for shipping over a fabric [`Wire`](pepc_fabric::Wire);
//! * [`standby`] — the standby store: the receive side, tolerant of the
//!   wire's drops, reordering, and corruption;
//! * [`detector`] — a missed-heartbeat failure detector with
//!   `Alive → Suspect → Dead` transitions;
//! * [`coordinator`] — [`HaCluster`]: a [`pepc::Cluster`] wrapped so that
//!   when a node dies, the detector notices, the Maglev table repairs
//!   (re-steering only the dead node's keys), and every replicated user is
//!   promoted onto a survivor — automatically, with zero control-state
//!   loss and counter loss bounded by the replication interval.

pub mod coordinator;
pub mod detector;
pub mod replog;
pub mod standby;

pub use coordinator::{FailoverReport, HaCluster, HaConfig};
pub use detector::{DetectorConfig, FailureDetector, NodeHealth};
pub use replog::{decode, encode, ReplKind, ReplRecord, ReplogError, REPLOG_VERSION};
pub use standby::StandbyStore;
