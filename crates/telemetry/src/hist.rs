//! Log-linear latency histogram, shared by the data path, control plane,
//! and bench harnesses.

/// A log-linear latency histogram: 64 power-of-two decades × 16 linear
/// sub-buckets, covering 1 ns .. ~580 years with ≤6.25% relative error.
/// Fixed memory, O(1) allocation-free insert — safe to use on the data
/// path.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
    min: u64,
    sum: u64,
}

const SUB_BITS: u32 = 4; // 16 sub-buckets per decade
const SUB: usize = 1 << SUB_BITS;

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram { buckets: vec![0; 64 * SUB], count: 0, max: 0, min: u64::MAX, sum: 0 }
    }

    /// Bucket index for a value. Public so boundary behaviour is testable.
    #[inline]
    pub fn index(value_ns: u64) -> usize {
        let v = value_ns.max(1);
        let decade = 63 - v.leading_zeros();
        if decade < SUB_BITS {
            return v as usize;
        }
        let sub = (v >> (decade - SUB_BITS)) as usize & (SUB - 1);
        (decade as usize) * SUB + sub
    }

    /// Bucket lower bound for an index (inverse of [`Self::index`]).
    pub fn bucket_floor(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let decade = (idx / SUB) as u32;
        let sub = (idx % SUB) as u64;
        (1u64 << decade) + (sub << (decade - SUB_BITS))
    }

    /// Record one latency sample (nanoseconds).
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::index(ns)] += 1;
        self.count += 1;
        self.sum += ns;
        self.max = self.max.max(ns);
        self.min = self.min.min(ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded sample.
    pub fn max_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded sample.
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of recorded samples.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in [0,1]) — returns the lower bound of the
    /// bucket containing that rank.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// The paper-style percentile summary used by the figure harnesses.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean_ns: self.mean_ns(),
            p50_ns: self.quantile_ns(0.50),
            p99_ns: self.quantile_ns(0.99),
            p999_ns: self.quantile_ns(0.999),
            max_ns: self.max_ns(),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time percentile digest of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
}

impl std::fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.0}ns p50={}ns p99={}ns p999={}ns max={}ns",
            self.count, self.mean_ns, self.p50_ns, self.p99_ns, self.p999_ns, self.max_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_roughly_correct() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        assert_eq!(h.count(), 10_000);
        let median = h.quantile_ns(0.5);
        assert!((4000..=6000).contains(&median), "median {median}");
        let p99 = h.quantile_ns(0.99);
        assert!((9000..=10_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.max_ns(), 10_000);
        assert_eq!(h.min_ns(), 1);
        assert!((h.mean_ns() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        for &v in &[1u64, 100, 10_000, 1_000_000, u32::MAX as u64] {
            h.record(v);
        }
        // Each recorded value should be within one sub-bucket of its floor.
        for &v in &[1u64, 100, 10_000, 1_000_000] {
            let floor = LatencyHistogram::bucket_floor(LatencyHistogram::index(v));
            assert!(floor <= v, "floor {floor} > value {v}");
            assert!((v - floor) as f64 <= v as f64 * 0.0626, "bucket too wide for {v}");
        }
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..100 {
            a.record(10 + i);
            b.record(100_000 + i);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!(a.quantile_ns(0.25) < 1000);
        assert!(a.quantile_ns(0.75) > 50_000);
    }

    #[test]
    fn small_values_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        // Values below 16 land in exact buckets (0 maps to bucket 1).
        assert_eq!(h.quantile_ns(1.0), 15);
    }

    #[test]
    fn summary_orders_percentiles() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100_000u64 {
            h.record(i);
        }
        let s = h.summary();
        assert!(s.p50_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.p999_ns);
        assert!(s.p999_ns <= s.max_ns);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn serde_roundtrip_preserves_population() {
        let mut h = LatencyHistogram::new();
        for i in [3u64, 17, 1000, 123_456_789] {
            h.record(i);
        }
        let text = serde_json::to_string(&h).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&text).unwrap();
        assert_eq!(back, h);
    }
}
