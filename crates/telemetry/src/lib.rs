//! Per-slice observability for the PEPC reproduction.
//!
//! This crate sits below `pepc-fabric` and `pepc` (core) and owns the
//! three observability primitives the rest of the system threads through
//! its planes:
//!
//! - [`LatencyHistogram`] — log-linear fixed-bucket histogram, O(1)
//!   allocation-free insert, safe on the data path. Records per-packet
//!   pipeline latency, control→data update propagation delay, and
//!   control-procedure latencies (attach, service request, handover,
//!   migration).
//! - [`DataMetrics`] / [`CtrlMetrics`] — plane-local counters with a
//!   complete drop-cause taxonomy, so `rx == forwarded + Σ drops` is a
//!   checkable invariant ([`SliceSnapshot::conservation_holds`]).
//! - [`MetricsSnapshot`] — a by-value, per-slice registry snapshot with
//!   ring-depth gauges, rendered as a human-readable table
//!   ([`MetricsSnapshot::render`]) or JSON
//!   ([`MetricsSnapshot::to_json`] / [`MetricsSnapshot::from_json`]).
//!
//! Threading model: planes update their own metrics on their own threads
//! — no atomics, no locks, no allocation on the hot path. Snapshots
//! cross threads by value (clone-out), matching the single-writer
//! discipline the rest of PEPC uses for user state.

mod hist;
mod metrics;
mod snapshot;

pub use hist::{HistogramSummary, LatencyHistogram};
pub use metrics::{CtrlMetrics, DataMetrics};
pub use snapshot::{MetricsSnapshot, RingGauge, SliceSnapshot, WireStat, STAGE_LABELS};
