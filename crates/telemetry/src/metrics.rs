//! Plane-local metrics.
//!
//! Counters the planes update on their own threads (no atomics on the hot
//! path); snapshots cross threads by value. The drop counters form a
//! complete taxonomy: every packet that enters the pipeline either
//! forwards or increments exactly one `drop_*` counter, so
//! `rx == forwarded + drops_total()` is an invariant the test suite
//! checks per slice.

/// Data-plane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DataMetrics {
    /// Packets entering the pipeline.
    pub rx: u64,
    /// Packets forwarded (uplink toward egress, downlink toward eNodeB).
    pub forwarded: u64,
    /// Packets taking the stateless-IoT fast path (subset of `forwarded`).
    pub iot_fast_path: u64,
    /// Drops: no user state found for the TEID / UE IP.
    pub drop_unknown_user: u64,
    /// Drops: PCEF gate closed.
    pub drop_gate: u64,
    /// Drops: rate enforcement (AMBR/MBR).
    pub drop_qos: u64,
    /// Drops: unparseable packets.
    pub drop_malformed: u64,
    /// Drops: packet arrived for a user whose node died and whose state
    /// was still being promoted onto a survivor (the failover blackout).
    pub drop_failover: u64,
    /// Drops: downlink for an idle (suspended) UE whose per-UE idle
    /// buffer was already full.
    pub drop_idle_overflow: u64,
    /// Drops: buffered idle downlink discarded because the page expired
    /// or the user was removed before waking.
    pub drop_idle_expired: u64,
    /// Drops: uplink from a suspended UE (it must service-request first).
    pub drop_idle_uplink: u64,
    /// Gauge: downlink packets currently parked in idle-UE buffers —
    /// neither forwarded nor dropped yet, so conservation carries them as
    /// their own term until the UE wakes (forwarded) or the page expires
    /// (`drop_idle_expired`).
    pub idle_buffered: u64,
    /// Buffered idle downlink flushed as forwarded when the UE woke
    /// (subset of `forwarded`).
    pub forwarded_on_wake: u64,
    /// Control→data updates applied.
    pub updates_applied: u64,
}

impl DataMetrics {
    /// Sum over the full drop-cause taxonomy.
    pub fn drops_total(&self) -> u64 {
        self.drop_unknown_user
            + self.drop_gate
            + self.drop_qos
            + self.drop_malformed
            + self.drop_failover
            + self.drop_idle_overflow
            + self.drop_idle_expired
            + self.drop_idle_uplink
    }

    /// Packet conservation: every received packet is either forwarded,
    /// attributed to exactly one drop cause, or parked in an idle buffer.
    pub fn conservation_holds(&self) -> bool {
        self.rx == self.forwarded + self.drops_total() + self.idle_buffered
    }
}

/// Control-plane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CtrlMetrics {
    /// Completed attach procedures.
    pub attaches: u64,
    /// Rejected attach attempts (auth failure, unknown IMSI).
    pub attach_rejects: u64,
    /// Handover events applied (S1 or X2).
    pub handovers: u64,
    /// Detaches processed.
    pub detaches: u64,
    /// Bearer modifications applied.
    pub bearer_updates: u64,
    /// Users migrated out of this slice.
    pub migrations_out: u64,
    /// Users migrated into this slice.
    pub migrations_in: u64,
    /// S1AP PDUs processed.
    pub s1ap_rx: u64,
    /// Service Requests served (idle→active).
    pub service_requests: u64,
    /// UE context releases (active→idle).
    pub releases: u64,
    // Per-procedure outcome taxonomy (PR 6). Together with
    // `procedures_in_flight` these satisfy
    // `proc_started == proc_completed + proc_preempted + proc_aborted +
    //  proc_expired + in_flight`, and the signaling counters satisfy
    // `s1ap_rx == sig_consumed + proc_deduped + sig_dropped + backlog`.
    /// Procedures started (one per procedure instance, all kinds).
    pub proc_started: u64,
    /// Procedures that reached their legal terminal state.
    pub proc_completed: u64,
    /// Procedures torn down because a newer procedure preempted them.
    pub proc_preempted: u64,
    /// Procedures aborted with a NAS cause (protocol error mid-flight).
    pub proc_aborted: u64,
    /// Procedures expired by the supervision timer (peer went silent).
    pub proc_expired: u64,
    /// Retransmitted messages answered from the cached response.
    pub proc_deduped: u64,
    /// Signaling messages delivered into a procedure machine.
    pub sig_consumed: u64,
    /// Signaling messages parked in a per-UE mailbox (still counted in
    /// `sig_consumed`/`sig_dropped` once they leave the mailbox).
    pub sig_deferred: u64,
    /// Signaling messages discarded: unroutable, undecodable, or
    /// meaningless in every reachable state.
    pub sig_dropped: u64,
    /// Signaling messages discarded because the target UE's mailbox was
    /// full (`MAILBOX_CAP` hit) — its own drop cause so mailbox pressure
    /// is visible separately from protocol-level discards.
    pub sig_overflow: u64,
    // Admission-control shed taxonomy (PR 8). Messages refused *before*
    // routing by the overload controller, one counter per priority
    // class, each answered with an explicit NAS backoff reject so shed
    // load is signaled rather than silently dropped.
    /// Shed handover-class messages (highest priority; only shed by the
    /// global in-flight ceiling, never by a per-eNodeB bucket).
    pub sig_shed_handover: u64,
    /// Shed attach/service-class messages (middle priority).
    pub sig_shed_attach: u64,
    /// Shed periodic-TAU-class messages (lowest priority).
    pub sig_shed_tau: u64,
    // Paging taxonomy (PR 10). Together with the count of machines in
    // `PagingWait` these satisfy the third identity:
    // `paged == paging_resolved + paging_expired + paging_in_flight`.
    /// Pages started (one per PagingWait instance, not per retransmit).
    pub paged: u64,
    /// Pages answered by the UE's Service Request.
    pub paging_resolved: u64,
    /// Pages abandoned: retransmissions exhausted, the page was
    /// preempted (UE detached/re-attached), or the machine was retired.
    pub paging_expired: u64,
    /// Paging PDU retransmissions (timer-driven re-sends, excluded from
    /// `paged`).
    pub paging_retx: u64,
}

impl CtrlMetrics {
    /// Every started procedure is accounted to exactly one outcome, given
    /// the number still in flight.
    pub fn procedure_accounting_holds(&self, in_flight: u64) -> bool {
        self.proc_started
            == self.proc_completed + self.proc_preempted + self.proc_aborted + self.proc_expired + in_flight
    }

    /// Total messages shed by admission control, across all priority
    /// classes.
    pub fn sig_shed_total(&self) -> u64 {
        self.sig_shed_handover + self.sig_shed_attach + self.sig_shed_tau
    }

    /// Every page started resolves, expires, or is still waiting for the
    /// UE to answer.
    pub fn paging_accounting_holds(&self, paging_in_flight: u64) -> bool {
        self.paged == self.paging_resolved + self.paging_expired + paging_in_flight
    }

    /// Every S1AP PDU received is consumed, deduped, dropped, overflowed,
    /// shed by admission control, or still parked in a mailbox.
    pub fn signaling_conservation_holds(&self, mailbox_backlog: u64) -> bool {
        self.s1ap_rx
            == self.sig_consumed
                + self.proc_deduped
                + self.sig_dropped
                + self.sig_overflow
                + self.sig_shed_total()
                + mailbox_backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let d = DataMetrics::default();
        assert_eq!(d.rx + d.forwarded + d.drop_unknown_user, 0);
        assert_eq!(d.drops_total(), 0);
        assert!(d.conservation_holds());
        let c = CtrlMetrics::default();
        assert_eq!(c.attaches + c.handovers, 0);
    }

    #[test]
    fn conservation_detects_leaks() {
        let mut d = DataMetrics { rx: 10, forwarded: 7, ..Default::default() };
        assert!(!d.conservation_holds());
        d.drop_gate = 2;
        d.drop_malformed = 1;
        assert!(d.conservation_holds());
        assert_eq!(d.drops_total(), 3);
    }

    #[test]
    fn conservation_carries_idle_buffered_packets() {
        // 10 in: 6 forwarded, 1 idle-overflow drop, 3 still buffered.
        let mut d = DataMetrics { rx: 10, forwarded: 6, drop_idle_overflow: 1, ..Default::default() };
        assert!(!d.conservation_holds());
        d.idle_buffered = 3;
        assert!(d.conservation_holds());
        // Wake: the buffer flushes as forwarded.
        d.forwarded += 3;
        d.forwarded_on_wake += 3;
        d.idle_buffered = 0;
        assert!(d.conservation_holds());
    }

    #[test]
    fn paging_accounting() {
        let mut c = CtrlMetrics { paged: 5, paging_resolved: 2, paging_expired: 1, ..Default::default() };
        assert!(c.paging_accounting_holds(2));
        assert!(!c.paging_accounting_holds(0));
        c.paging_expired += 2;
        assert!(c.paging_accounting_holds(0));
    }

    #[test]
    fn signaling_conservation_counts_shed_and_overflow() {
        let mut c = CtrlMetrics { s1ap_rx: 10, sig_consumed: 4, ..Default::default() };
        assert!(!c.signaling_conservation_holds(0));
        c.sig_overflow = 2;
        c.sig_shed_attach = 2;
        c.sig_shed_tau = 1;
        c.sig_shed_handover = 1;
        assert_eq!(c.sig_shed_total(), 4);
        assert!(c.signaling_conservation_holds(0));
        assert!(!c.signaling_conservation_holds(1));
        c.s1ap_rx += 1;
        assert!(c.signaling_conservation_holds(1));
    }
}
