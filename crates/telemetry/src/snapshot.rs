//! By-value snapshots of the per-slice observability registry.

use crate::{CtrlMetrics, DataMetrics, LatencyHistogram};

/// Depth/capacity gauge for one SPSC ring or port queue, sampled at
/// snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RingGauge {
    /// Which ring this is (e.g. `"update_ring"`, `"port_rx"`).
    pub name: String,
    /// Elements queued when the snapshot was taken.
    pub depth: u64,
    /// Ring capacity in elements.
    pub capacity: u64,
}

impl RingGauge {
    /// Fill fraction in [0, 1].
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.depth as f64 / self.capacity as f64
        }
    }
}

/// Per-wire fabric delivery stats, exported by whoever owns the wires
/// (the cluster) so chaos runs show fabric-level loss next to the
/// slice-level drop taxonomy.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireStat {
    /// Which wire this is (e.g. `"repl:node1"`, `"hb:node2"`).
    pub name: String,
    /// Frames delivered to the far port.
    pub forwarded: u64,
    /// Frames dropped by injected loss.
    pub dropped: u64,
    /// Frames delivered with corrupted payloads (subset of `forwarded`).
    pub corrupted: u64,
    /// Frames delivered out of order (subset of `forwarded`).
    pub reordered: u64,
    /// Extra copies injected by duplication (subset of `forwarded`).
    pub duplicated: u64,
    /// Frames that sat in the wire's delay line for at least one pump.
    pub delayed: u64,
    /// Frames deferred by rate limiting (later delivered or dropped).
    pub rate_limited: u64,
}

/// Everything one slice reports: plane counters, latency histograms, and
/// ring gauges. Assembled by the slice owner thread; crosses threads by
/// value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SliceSnapshot {
    pub slice_id: u64,
    /// Attached users at snapshot time.
    pub users: u64,
    pub data: DataMetrics,
    pub ctrl: CtrlMetrics,
    /// Per-packet data-plane pipeline latency (recorded on forward).
    pub pipeline_ns: LatencyHistogram,
    /// Control→data update propagation delay (enqueue → apply).
    pub update_delay_ns: LatencyHistogram,
    /// Attach procedure latency.
    pub attach_ns: LatencyHistogram,
    /// Service Request procedure latency.
    pub service_request_ns: LatencyHistogram,
    /// Handover procedure latency.
    pub handover_ns: LatencyHistogram,
    /// Per-user migration latency (park → drain).
    pub migration_ns: LatencyHistogram,
    /// Per-stage amortized ns/packet (parse/lookup/enforce, in
    /// [`STAGE_LABELS`] order) when stage timing is enabled; empty
    /// histograms otherwise.
    pub stage_ns: Vec<LatencyHistogram>,
    pub rings: Vec<RingGauge>,
    /// Signaling messages parked in per-UE mailboxes at snapshot time
    /// (mailbox pressure under storms).
    pub mailbox_backlog: u64,
    /// eNodeBs the admission limiter is tracking a token bucket for.
    pub limiter_enbs: u64,
    /// Admission tokens available across all tracked eNodeB buckets
    /// (limiter occupancy: 0 with buckets tracked = fully saturated).
    pub limiter_tokens: u64,
    /// Bytes reserved by the slice's context arena (chunk slots + slot
    /// generations + chunk directory).
    pub slab_bytes: u64,
    /// Bytes held by the lookup indexes (control-plane IMSI/GUTI tables
    /// plus data-plane TEID/UE-IP tables, including any in-progress
    /// incremental-resize old arrays).
    pub table_bytes: u64,
    /// Arena slots currently live. Invariant: equals `users` — every
    /// attach allocates exactly one slot, every detach frees it.
    pub live_slots: u64,
    /// Arena slots on the free-list, reusable without new allocation.
    pub free_slots: u64,
    /// `slab_bytes / live_slots` — the state-density audit number the
    /// capacity bench gates on (0 when no users are attached).
    pub bytes_per_user: u64,
}

/// Labels for [`SliceSnapshot::stage_ns`], index-aligned with the data
/// plane's three pipeline passes.
pub const STAGE_LABELS: [&str; 3] = ["stage-parse", "stage-lookup", "stage-enforce"];

impl SliceSnapshot {
    pub fn new(slice_id: u64) -> Self {
        SliceSnapshot {
            slice_id,
            users: 0,
            data: DataMetrics::default(),
            ctrl: CtrlMetrics::default(),
            pipeline_ns: LatencyHistogram::new(),
            update_delay_ns: LatencyHistogram::new(),
            attach_ns: LatencyHistogram::new(),
            service_request_ns: LatencyHistogram::new(),
            handover_ns: LatencyHistogram::new(),
            migration_ns: LatencyHistogram::new(),
            stage_ns: Vec::new(),
            rings: Vec::new(),
            mailbox_backlog: 0,
            limiter_enbs: 0,
            limiter_tokens: 0,
            slab_bytes: 0,
            table_bytes: 0,
            live_slots: 0,
            free_slots: 0,
            bytes_per_user: 0,
        }
    }

    /// Packet conservation for this slice: `rx == forwarded + Σ drops`.
    pub fn conservation_holds(&self) -> bool {
        self.data.conservation_holds()
    }

    /// Equality on the deterministic part of the snapshot: all counters,
    /// the drop taxonomy, user/ring gauges, and histogram *counts*.
    /// Histogram bucket contents are wall-clock measurements and differ
    /// across runs even with identical seeds, so they are excluded.
    pub fn deterministic_eq(&self, other: &SliceSnapshot) -> bool {
        self.slice_id == other.slice_id
            && self.users == other.users
            && self.data == other.data
            && self.ctrl == other.ctrl
            && self.pipeline_ns.count() == other.pipeline_ns.count()
            && self.update_delay_ns.count() == other.update_delay_ns.count()
            && self.attach_ns.count() == other.attach_ns.count()
            && self.service_request_ns.count() == other.service_request_ns.count()
            && self.handover_ns.count() == other.handover_ns.count()
            && self.migration_ns.count() == other.migration_ns.count()
            && self.stage_ns.len() == other.stage_ns.len()
            && self.stage_ns.iter().zip(&other.stage_ns).all(|(a, b)| a.count() == b.count())
            && self.rings == other.rings
            && self.mailbox_backlog == other.mailbox_backlog
            && self.limiter_enbs == other.limiter_enbs
            && self.limiter_tokens == other.limiter_tokens
            && self.live_slots == other.live_slots
            && self.free_slots == other.free_slots
    }

    fn render_into(&self, out: &mut String) {
        use std::fmt::Write;
        let d = &self.data;
        let c = &self.ctrl;
        let conservation = if self.conservation_holds() { "ok" } else { "VIOLATED" };
        let _ = writeln!(out, "slice {}: users={}", self.slice_id, self.users);
        let _ = writeln!(
            out,
            "  packets: rx={} fwd={} iot={} drops[unknown={} gate={} qos={} malformed={} failover={}] \
             updates={} conservation={}",
            d.rx,
            d.forwarded,
            d.iot_fast_path,
            d.drop_unknown_user,
            d.drop_gate,
            d.drop_qos,
            d.drop_malformed,
            d.drop_failover,
            d.updates_applied,
            conservation,
        );
        let _ = writeln!(
            out,
            "  ctrl: attach={}/{}rej sr={} ho={} rel={} detach={} bearer={} migr={}out/{}in s1ap={}",
            c.attaches,
            c.attach_rejects,
            c.service_requests,
            c.handovers,
            c.releases,
            c.detaches,
            c.bearer_updates,
            c.migrations_out,
            c.migrations_in,
            c.s1ap_rx,
        );
        if c.proc_started > 0 {
            let _ = writeln!(
                out,
                "  proc: started={} done={} preempt={} abort={} expire={} dedup={} sig[consumed={} deferred={} dropped={} overflow={}]",
                c.proc_started,
                c.proc_completed,
                c.proc_preempted,
                c.proc_aborted,
                c.proc_expired,
                c.proc_deduped,
                c.sig_consumed,
                c.sig_deferred,
                c.sig_dropped,
                c.sig_overflow,
            );
        }
        if self.slab_bytes > 0 || self.table_bytes > 0 {
            let _ = writeln!(
                out,
                "  memory: slab={} tables={} slots[live={} free={}] bytes/user={}",
                self.slab_bytes, self.table_bytes, self.live_slots, self.free_slots, self.bytes_per_user,
            );
        }
        if c.sig_shed_total() > 0 || self.limiter_enbs > 0 || self.mailbox_backlog > 0 {
            let _ = writeln!(
                out,
                "  overload: shed[ho={} attach={} tau={}] limiter[enbs={} tokens={}] backlog={}",
                c.sig_shed_handover,
                c.sig_shed_attach,
                c.sig_shed_tau,
                self.limiter_enbs,
                self.limiter_tokens,
                self.mailbox_backlog,
            );
        }
        for (label, h) in [
            ("pipeline", &self.pipeline_ns),
            ("upd-delay", &self.update_delay_ns),
            ("attach", &self.attach_ns),
            ("service-req", &self.service_request_ns),
            ("handover", &self.handover_ns),
            ("migration", &self.migration_ns),
        ] {
            if h.count() > 0 {
                let _ = writeln!(out, "  {label:<11} {}", h.summary());
            }
        }
        for (h, label) in self.stage_ns.iter().zip(STAGE_LABELS) {
            if h.count() > 0 {
                let _ = writeln!(out, "  {label:<13} {}", h.summary());
            }
        }
        for r in &self.rings {
            let _ = writeln!(out, "  ring {:<11} {}/{} ({:.1}%)", r.name, r.depth, r.capacity, r.occupancy() * 100.0);
        }
    }
}

/// Node-wide snapshot: one [`SliceSnapshot`] per slice, taken at a single
/// point in time by the owner of each plane.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    pub slices: Vec<SliceSnapshot>,
    /// Fabric wire delivery stats (empty for single-node snapshots; the
    /// cluster fills these in so chaos runs can correlate fabric loss
    /// with slice drops).
    pub wires: Vec<WireStat>,
    /// Software-RSS steering totals: packets steered to each shard of a
    /// sharded data path (empty when the snapshot owner runs unsharded).
    /// Skew is read off [`Self::shard_imbalance`], not inferred.
    pub shard_packets: Vec<u64>,
}

impl MetricsSnapshot {
    pub fn new() -> Self {
        Self::default()
    }

    /// Human-readable multi-line report with p50/p99/p999 per histogram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.slices {
            s.render_into(&mut out);
        }
        if self.slices.is_empty() {
            out.push_str("(no slices)\n");
        }
        for w in &self.wires {
            use std::fmt::Write;
            let _ = writeln!(
                out,
                "wire {}: fwd={} dropped={} corrupted={} reordered={} duplicated={} delayed={} rate_limited={}",
                w.name, w.forwarded, w.dropped, w.corrupted, w.reordered, w.duplicated, w.delayed, w.rate_limited,
            );
        }
        if !self.shard_packets.is_empty() {
            use std::fmt::Write;
            let _ = writeln!(
                out,
                "shards: packets={:?} imbalance={:.3} (max/mean)",
                self.shard_packets,
                self.shard_imbalance(),
            );
        }
        out
    }

    /// Machine-readable JSON export.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }

    /// Parse a snapshot previously produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Conservation across every slice.
    pub fn conservation_holds(&self) -> bool {
        self.slices.iter().all(SliceSnapshot::conservation_holds)
    }

    /// Node-wide totals of the data-plane counters (drop taxonomy summed
    /// across slices).
    pub fn data_totals(&self) -> DataMetrics {
        let mut t = DataMetrics::default();
        for s in &self.slices {
            let d = &s.data;
            t.rx += d.rx;
            t.forwarded += d.forwarded;
            t.iot_fast_path += d.iot_fast_path;
            t.drop_unknown_user += d.drop_unknown_user;
            t.drop_gate += d.drop_gate;
            t.drop_qos += d.drop_qos;
            t.drop_malformed += d.drop_malformed;
            t.drop_failover += d.drop_failover;
            t.updates_applied += d.updates_applied;
        }
        t
    }

    /// Shard imbalance as max/mean of the steered packet counts: 1.0 is
    /// perfectly balanced, 0.0 means unsharded or no traffic yet.
    pub fn shard_imbalance(&self) -> f64 {
        let total: u64 = self.shard_packets.iter().sum();
        if total == 0 || self.shard_packets.is_empty() {
            return 0.0;
        }
        let max = *self.shard_packets.iter().max().expect("non-empty") as f64;
        max / (total as f64 / self.shard_packets.len() as f64)
    }

    /// See [`SliceSnapshot::deterministic_eq`].
    pub fn deterministic_eq(&self, other: &MetricsSnapshot) -> bool {
        self.slices.len() == other.slices.len()
            && self.slices.iter().zip(&other.slices).all(|(a, b)| a.deterministic_eq(b))
            && self.wires == other.wires
            && self.shard_packets == other.shard_packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = SliceSnapshot::new(3);
        s.users = 4;
        s.data.rx = 100;
        s.data.forwarded = 90;
        s.data.drop_gate = 6;
        s.data.drop_qos = 4;
        s.ctrl.attaches = 4;
        for i in 1..=90u64 {
            s.pipeline_ns.record(i * 100);
        }
        s.attach_ns.record(5_000);
        let mut stage = LatencyHistogram::new();
        stage.record(40);
        s.stage_ns = vec![stage.clone(), stage.clone(), stage];
        s.rings.push(RingGauge { name: "update_ring".into(), depth: 3, capacity: 1024 });
        s.ctrl.sig_shed_attach = 5;
        s.ctrl.sig_shed_tau = 2;
        s.mailbox_backlog = 3;
        s.limiter_enbs = 2;
        s.limiter_tokens = 17;
        s.slab_bytes = 4096;
        s.table_bytes = 512;
        s.live_slots = 4;
        s.free_slots = 12;
        s.bytes_per_user = 1024;
        let wires = vec![WireStat { name: "repl:node1".into(), forwarded: 40, dropped: 2, ..Default::default() }];
        MetricsSnapshot { slices: vec![s], wires, shard_packets: vec![60, 40] }
    }

    #[test]
    fn render_contains_key_lines() {
        let snap = sample();
        let text = snap.render();
        assert!(text.contains("slice 3"), "{text}");
        assert!(text.contains("conservation=ok"), "{text}");
        assert!(text.contains("failover="), "{text}");
        assert!(text.contains("p999="), "{text}");
        assert!(text.contains("ring update_ring"), "{text}");
        assert!(text.contains("wire repl:node1: fwd=40 dropped=2"), "{text}");
        assert!(text.contains("stage-parse"), "{text}");
        assert!(text.contains("stage-enforce"), "{text}");
        assert!(text.contains("shards: packets=[60, 40] imbalance=1.200"), "{text}");
        assert!(text.contains("overload: shed[ho=0 attach=5 tau=2] limiter[enbs=2 tokens=17] backlog=3"), "{text}");
        assert!(text.contains("memory: slab=4096 tables=512 slots[live=4 free=12] bytes/user=1024"), "{text}");
        assert!(MetricsSnapshot::new().render().contains("no slices"));
    }

    #[test]
    fn memory_line_hidden_when_no_arena_reported() {
        let mut snap = sample();
        let s = &mut snap.slices[0];
        s.slab_bytes = 0;
        s.table_bytes = 0;
        s.live_slots = 0;
        s.free_slots = 0;
        s.bytes_per_user = 0;
        assert!(!snap.render().contains("memory:"), "{}", snap.render());
    }

    #[test]
    fn memory_gauges_survive_json() {
        let snap = sample();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.slices[0].slab_bytes, 4096);
        assert_eq!(back.slices[0].table_bytes, 512);
        assert_eq!(back.slices[0].live_slots, 4);
        assert_eq!(back.slices[0].free_slots, 12);
        assert_eq!(back.slices[0].bytes_per_user, 1024);
    }

    #[test]
    fn overload_line_hidden_when_quiet() {
        let mut snap = sample();
        let s = &mut snap.slices[0];
        s.ctrl.sig_shed_attach = 0;
        s.ctrl.sig_shed_tau = 0;
        s.mailbox_backlog = 0;
        s.limiter_enbs = 0;
        s.limiter_tokens = 0;
        assert!(!snap.render().contains("overload:"), "{}", snap.render());
    }

    #[test]
    fn shard_imbalance_max_over_mean() {
        let mut snap = MetricsSnapshot::new();
        assert_eq!(snap.shard_imbalance(), 0.0, "unsharded");
        snap.shard_packets = vec![0, 0];
        assert_eq!(snap.shard_imbalance(), 0.0, "no traffic yet");
        snap.shard_packets = vec![25, 25, 25, 25];
        assert!((snap.shard_imbalance() - 1.0).abs() < 1e-9);
        snap.shard_packets = vec![90, 10];
        assert!((snap.shard_imbalance() - 1.8).abs() < 1e-9);
    }

    #[test]
    fn deterministic_eq_tracks_stage_counts_and_shards() {
        let a = sample();
        let mut b = sample();
        // Same stage population, different values: still deterministic-eq.
        b.slices[0].stage_ns[0] = LatencyHistogram::new();
        b.slices[0].stage_ns[0].record(9_999);
        assert!(a.deterministic_eq(&b));
        // Extra stage sample breaks it.
        b.slices[0].stage_ns[0].record(1);
        assert!(!a.deterministic_eq(&b));
        // Shard steering totals are deterministic and must match.
        let mut c = sample();
        c.shard_packets[0] += 1;
        assert!(!a.deterministic_eq(&c));
        // Overload gauges are deterministic and must match.
        let mut d = sample();
        d.slices[0].mailbox_backlog += 1;
        assert!(!a.deterministic_eq(&d));
        let mut e = sample();
        e.slices[0].limiter_tokens += 1;
        assert!(!a.deterministic_eq(&e));
        let mut f = sample();
        f.slices[0].ctrl.sig_shed_tau += 1;
        assert!(!a.deterministic_eq(&f));
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let snap = sample();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert!(back.deterministic_eq(&snap));
        assert!(MetricsSnapshot::from_json("not json").is_err());
    }

    #[test]
    fn conservation_and_totals() {
        let mut snap = sample();
        assert!(snap.conservation_holds());
        assert_eq!(snap.data_totals().rx, 100);
        assert_eq!(snap.data_totals().drops_total(), 10);
        snap.slices[0].data.rx += 1;
        assert!(!snap.conservation_holds());
    }

    #[test]
    fn deterministic_eq_ignores_latency_values() {
        let a = sample();
        let mut b = sample();
        // Same population size, different measured values.
        b.slices[0].pipeline_ns = LatencyHistogram::new();
        for i in 1..=90u64 {
            b.slices[0].pipeline_ns.record(i * 999);
        }
        assert!(a.deterministic_eq(&b));
        assert_ne!(a, b);
        // Different counter values are not deterministic-equal.
        b.slices[0].data.forwarded += 1;
        assert!(!a.deterministic_eq(&b));
        // Wire stats are deterministic and must match too.
        let mut c = sample();
        c.wires[0].dropped += 1;
        assert!(!a.deterministic_eq(&c));
    }

    #[test]
    fn ring_gauge_occupancy() {
        let g = RingGauge { name: "x".into(), depth: 512, capacity: 1024 };
        assert!((g.occupancy() - 0.5).abs() < 1e-9);
        let z = RingGauge { name: "y".into(), depth: 0, capacity: 0 };
        assert_eq!(z.occupancy(), 0.0);
    }
}
