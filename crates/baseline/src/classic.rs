//! The classic EPC wired end-to-end: the system under test for the
//! baseline columns of Figures 4–6.

use crate::components::{Mme, Pgw, Sgw, SgwAction};
use crate::config::{busy_wait_ns, ClassicConfig};
use pepc_net::gtp::{decap_gtpu, encap_gtpu};
use pepc_net::{BpfProgram, FiveTuple, Ipv4Hdr, Mbuf};

/// Outcome of a data packet through the classic EPC.
#[derive(Debug)]
pub enum ClassicVerdict {
    Forward(Mbuf),
    Drop,
}

impl ClassicVerdict {
    pub fn is_forward(&self) -> bool {
        matches!(self, ClassicVerdict::Forward(_))
    }
}

/// Data/signaling counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassicMetrics {
    pub rx: u64,
    pub forwarded: u64,
    pub dropped: u64,
    pub attaches: u64,
    pub handovers: u64,
    pub detaches: u64,
}

/// A classic (MME + S-GW + P-GW) EPC instance.
pub struct ClassicEpc {
    cfg: ClassicConfig,
    mme: Mme,
    sgw: Sgw,
    pgw: Pgw,
    /// ADC programs (application detection over the inner 5-tuple),
    /// present in Industrial#1.
    adc_programs: Vec<BpfProgram>,
    sgw_ip: u32,
    pgw_ip: u32,
    metrics: ClassicMetrics,
}

impl ClassicEpc {
    pub fn new(cfg: ClassicConfig) -> Self {
        let adc_programs = if cfg.adc_enabled {
            vec![
                BpfProgram::match_proto_port_range(6, 80, 81, 1),      // HTTP
                BpfProgram::match_proto_port_range(6, 443, 444, 2),    // HTTPS
                BpfProgram::match_proto_port_range(17, 5060, 5062, 3), // SIP
                BpfProgram::match_dst_prefix(0x08080000, 16, 4),       // well-known CDN
            ]
        } else {
            Vec::new()
        };
        ClassicEpc {
            cfg,
            mme: Mme::new(0x0100_0000, 0x0A00_0001),
            sgw: Sgw::new(0x0500_0000),
            pgw: Pgw::new(),
            adc_programs,
            sgw_ip: 0x0AFE_0001,
            pgw_ip: 0x0AFE_0002,
            metrics: ClassicMetrics::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClassicConfig {
        &self.cfg
    }

    /// Mutable configuration access — harnesses disable the calibrated
    /// stalls for bulk provisioning, then restore the preset to measure.
    pub fn config_mut(&mut self) -> &mut ClassicConfig {
        &mut self.cfg
    }

    // -- signaling (processed in-line with data, stalling the pipeline) ----

    /// Run a full attach transaction: MME → S-GW → P-GW and back, each
    /// hop costing a synchronization window on the gateway path.
    pub fn attach(&mut self, imsi: u64) -> bool {
        let s11 = self.mme.begin_attach(imsi);
        busy_wait_ns(self.cfg.sync_window_ns); // S11 transaction
        let action = match self.sgw.handle_s11(&s11) {
            Ok(a) => a,
            Err(()) => return false,
        };
        let s5 = match action {
            SgwAction::ForwardToPgw(m) => m,
            _ => return false,
        };
        busy_wait_ns(self.cfg.sync_window_ns); // S5 transaction
        let s5_rsp = match self.pgw.handle_s5(&s5) {
            Ok(r) => r,
            Err(()) => return false,
        };
        let s11_rsp = match self.sgw.finish_create(&s5_rsp) {
            Ok(r) => r,
            Err(()) => return false,
        };
        let ok = self.mme.complete_attach(&s11_rsp);
        if ok {
            self.metrics.attaches += 1;
        }
        ok
    }

    /// Run an S1 handover: MME updates its copy, then synchronizes the
    /// S-GW copy over S11 (and real deployments often the P-GW too).
    pub fn s1_handover(&mut self, imsi: u64, enb_teid: u32, enb_ip: u32) -> bool {
        let mb = match self.mme.begin_handover(imsi, enb_teid, enb_ip) {
            Some(m) => m,
            None => return false,
        };
        busy_wait_ns(self.cfg.sync_window_ns);
        match self.sgw.handle_s11(&mb) {
            Ok(SgwAction::Respond(_)) => {
                self.metrics.handovers += 1;
                true
            }
            _ => false,
        }
    }

    /// Run a detach through all three components.
    pub fn detach(&mut self, imsi: u64) -> bool {
        let del = match self.mme.begin_detach(imsi) {
            Some(m) => m,
            None => return false,
        };
        busy_wait_ns(self.cfg.sync_window_ns);
        let (fwd, found) = match self.sgw.handle_s11(&del) {
            Ok(SgwAction::ForwardDeleteToPgw(f, found)) => (f, found),
            _ => return false,
        };
        busy_wait_ns(self.cfg.sync_window_ns);
        let _ = self.pgw.handle_s5(&fwd);
        if found {
            self.metrics.detaches += 1;
        }
        found
    }

    // -- data path -----------------------------------------------------------

    /// Process one data packet through S-GW and P-GW (uplink: GTP-U in;
    /// downlink: plain IP in).
    pub fn process(&mut self, m: Mbuf, now_ns: u64) -> ClassicVerdict {
        self.metrics.rx += 1;
        let d = m.data();
        let is_uplink =
            d.len() >= 28 && d[0] == 0x45 && d[9] == 17 && u16::from_be_bytes([d[22], d[23]]) == pepc_net::GTPU_PORT;
        let v = if is_uplink { self.uplink(m, now_ns) } else { self.downlink(m, now_ns) };
        match &v {
            ClassicVerdict::Forward(_) => self.metrics.forwarded += 1,
            ClassicVerdict::Drop => self.metrics.dropped += 1,
        }
        v
    }

    fn uplink(&mut self, mut m: Mbuf, _now_ns: u64) -> ClassicVerdict {
        // ---- S-GW: kernel in, S1-U decap, lookup, S5 encap ----
        busy_wait_ns(self.cfg.per_packet_kernel_ns);
        let (gtp, _) = match decap_gtpu(&mut m) {
            Ok(x) => x,
            Err(_) => return ClassicVerdict::Drop,
        };
        let bytes = m.len() as u64;
        let pgw_teid = {
            // Per-packet counter writes force the write lock on the flat
            // table — the gateways are "datapath writers" by design.
            let mut t = self.sgw.table.by_teid.write();
            match t.get_mut(&gtp.teid) {
                Some(s) => {
                    s.ul_packets += 1;
                    s.ul_bytes += bytes;
                    s.pgw_teid
                }
                None => return ClassicVerdict::Drop,
            }
        };
        if encap_gtpu(&mut m, self.sgw_ip, self.pgw_ip, pgw_teid).is_err() {
            return ClassicVerdict::Drop;
        }
        // ---- P-GW: kernel in, S5 decap, lookup, ADC, egress ----
        busy_wait_ns(self.cfg.per_packet_kernel_ns);
        let (gtp5, _) = match decap_gtpu(&mut m) {
            Ok(x) => x,
            Err(_) => return ClassicVerdict::Drop,
        };
        {
            let mut t = self.pgw.table.by_teid.write();
            match t.get_mut(&gtp5.teid) {
                Some(s) => {
                    s.ul_packets += 1;
                    s.ul_bytes += bytes;
                }
                None => return ClassicVerdict::Drop,
            }
        }
        if !self.adc_programs.is_empty() {
            let ft = FiveTuple::from_ipv4(m.data()).unwrap_or_default();
            for p in &self.adc_programs {
                if p.run(&ft) != 0 {
                    break;
                }
            }
        }
        ClassicVerdict::Forward(m)
    }

    fn downlink(&mut self, mut m: Mbuf, _now_ns: u64) -> ClassicVerdict {
        // ---- P-GW: kernel in, lookup by UE IP, S5 encap ----
        busy_wait_ns(self.cfg.per_packet_kernel_ns);
        let ip = match Ipv4Hdr::parse(m.data()) {
            Ok(ip) => ip,
            Err(_) => return ClassicVerdict::Drop,
        };
        let bytes = m.len() as u64;
        if !self.adc_programs.is_empty() {
            let ft = FiveTuple::from_ipv4(m.data()).unwrap_or_default();
            for p in &self.adc_programs {
                if p.run(&ft) != 0 {
                    break;
                }
            }
        }
        let pgw_teid = {
            let key = self.pgw.table.by_ue_ip.read().get(&ip.dst).copied();
            let key = match key {
                Some(k) => k,
                None => return ClassicVerdict::Drop,
            };
            let mut t = self.pgw.table.by_teid.write();
            match t.get_mut(&key) {
                Some(s) => {
                    s.dl_packets += 1;
                    s.dl_bytes += bytes;
                    key
                }
                None => return ClassicVerdict::Drop,
            }
        };
        if encap_gtpu(&mut m, self.pgw_ip, self.sgw_ip, pgw_teid).is_err() {
            return ClassicVerdict::Drop;
        }
        // ---- S-GW: kernel in, S5 decap, lookup, S1-U encap ----
        busy_wait_ns(self.cfg.per_packet_kernel_ns);
        let _ = match decap_gtpu(&mut m) {
            Ok(x) => x,
            Err(_) => return ClassicVerdict::Drop,
        };
        let (enb_teid, enb_ip, sgw_teid) = {
            let key = self.sgw.table.by_ue_ip.read().get(&ip.dst).copied();
            let key = match key {
                Some(k) => k,
                None => return ClassicVerdict::Drop,
            };
            let mut t = self.sgw.table.by_teid.write();
            match t.get_mut(&key) {
                Some(s) => {
                    s.dl_packets += 1;
                    s.dl_bytes += bytes;
                    (s.enb_teid, s.enb_ip, key)
                }
                None => return ClassicVerdict::Drop,
            }
        };
        let _ = sgw_teid;
        if encap_gtpu(&mut m, self.sgw_ip, enb_ip, enb_teid).is_err() {
            return ClassicVerdict::Drop;
        }
        ClassicVerdict::Forward(m)
    }

    // -- inspection ------------------------------------------------------------

    /// The eNodeB-facing uplink TEID for `imsi` (what the traffic
    /// generator must stamp on S1-U packets).
    pub fn uplink_teid(&self, imsi: u64) -> Option<u32> {
        self.mme.sessions.get(&imsi).map(|s| s.sgw_teid)
    }

    /// The UE IP for `imsi`.
    pub fn ue_ip(&self, imsi: u64) -> Option<u32> {
        self.mme.sessions.get(&imsi).map(|s| s.ue_ip)
    }

    pub fn metrics(&self) -> ClassicMetrics {
        self.metrics
    }

    /// Users in the S-GW table.
    pub fn user_count(&self) -> usize {
        self.sgw.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BaselinePreset;
    use pepc_net::ipv4::IpProto;
    use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
    use pepc_net::IPV4_HDR_LEN;

    fn epc() -> ClassicEpc {
        // mechanisms_only: fast tests, no calibrated stalls.
        ClassicEpc::new(ClassicConfig::mechanisms_only(BaselinePreset::Industrial1))
    }

    fn inner(src: u32, dst: u32, port: u16) -> Mbuf {
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
        Ipv4Hdr::new(src, dst, IpProto::Udp, UDP_HDR_LEN + 16).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
        UdpHdr::new(40000, port, 16).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
        m.extend(&hdr);
        m.extend(&[0u8; 16]);
        m
    }

    fn uplink_pkt(epc: &ClassicEpc, imsi: u64) -> Mbuf {
        let teid = epc.uplink_teid(imsi).unwrap();
        let ue_ip = epc.ue_ip(imsi).unwrap();
        let mut m = inner(ue_ip, 0x08080808, 80);
        encap_gtpu(&mut m, 0xC0A80001, 0x0AFE0001, teid).unwrap();
        m
    }

    #[test]
    fn uplink_traverses_both_gateways() {
        let mut e = epc();
        assert!(e.attach(7));
        let v = e.process(uplink_pkt(&e, 7), 0);
        match v {
            ClassicVerdict::Forward(m) => {
                // Fully decapsulated at the P-GW egress.
                let ip = Ipv4Hdr::parse(m.data()).unwrap();
                assert_eq!(ip.dst, 0x08080808);
            }
            ClassicVerdict::Drop => panic!("dropped"),
        }
        // Counters incremented at BOTH gateways (duplicated work).
        let sgw_ul: u64 = e.sgw.table.by_teid.read().values().map(|s| s.ul_packets).sum();
        let pgw_ul: u64 = e.pgw.table.by_teid.read().values().map(|s| s.ul_packets).sum();
        assert_eq!(sgw_ul, 1);
        assert_eq!(pgw_ul, 1);
    }

    #[test]
    fn downlink_tunnels_to_current_enb() {
        let mut e = epc();
        e.attach(7);
        e.s1_handover(7, 0xE7, 0xC0A80009);
        let ue_ip = e.ue_ip(7).unwrap();
        match e.process(inner(0x08080808, ue_ip, 443), 0) {
            ClassicVerdict::Forward(mut m) => {
                let (gtp, outer) = decap_gtpu(&mut m).unwrap();
                assert_eq!(gtp.teid, 0xE7);
                assert_eq!(outer.dst, 0xC0A80009);
            }
            ClassicVerdict::Drop => panic!("dropped"),
        }
    }

    #[test]
    fn unknown_tunnel_dropped() {
        let mut e = epc();
        e.attach(7);
        let mut m = inner(1, 2, 3);
        encap_gtpu(&mut m, 4, 5, 0xDEAD).unwrap();
        assert!(!e.process(m, 0).is_forward());
        assert_eq!(e.metrics().dropped, 1);
    }

    #[test]
    fn traffic_before_attach_dropped_after_attach_flows() {
        let mut e = epc();
        let mut m = inner(1, 0x0A000001, 80);
        assert!(!e.process(m.clone(), 0).is_forward());
        e.attach(7);
        e.s1_handover(7, 1, 2);
        m = inner(1, e.ue_ip(7).unwrap(), 80);
        assert!(e.process(m, 0).is_forward());
    }

    #[test]
    fn detach_stops_traffic() {
        let mut e = epc();
        e.attach(7);
        let pkt = uplink_pkt(&e, 7);
        assert!(e.process(pkt.clone(), 0).is_forward());
        assert!(e.detach(7));
        assert!(!e.process(pkt, 0).is_forward());
        assert_eq!(e.user_count(), 0);
    }

    #[test]
    fn sync_window_stalls_signaling() {
        let mut cfg = ClassicConfig::mechanisms_only(BaselinePreset::Industrial1);
        cfg.sync_window_ns = 300_000; // 0.3 ms per hop
        let mut e = ClassicEpc::new(cfg);
        let t = std::time::Instant::now();
        e.attach(7);
        // attach crosses two sync windows (S11 + S5).
        assert!(t.elapsed().as_nanos() >= 600_000, "elapsed {:?}", t.elapsed());
    }

    #[test]
    fn malformed_packets_dropped() {
        let mut e = epc();
        assert!(!e.process(Mbuf::from_payload(&[0u8; 10]), 0).is_forward());
    }

    #[test]
    fn many_users_all_reachable() {
        let mut e = epc();
        for imsi in 0..500 {
            assert!(e.attach(imsi));
        }
        assert_eq!(e.user_count(), 500);
        for imsi in (0..500).step_by(97) {
            let pkt = uplink_pkt(&e, imsi);
            assert!(e.process(pkt, 0).is_forward(), "imsi {imsi}");
        }
    }
}
