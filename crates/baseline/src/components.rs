//! The classic EPC components: MME, S-GW, P-GW.
//!
//! Each component keeps its **own copy** of per-user session state in a
//! **single flat table** — the two properties (duplication, no
//! active-set separation) the paper identifies as the root of the classic
//! design's poor scaling. Synchronization between the copies happens via
//! GTP-C messages serialized to bytes and parsed by the receiver, exactly
//! as between the separate processes of a real deployment.

use parking_lot::RwLock;
use pepc_net::gtp::GtpcMsg;
use std::collections::HashMap;

/// Per-user session state as each classic component duplicates it.
/// Compare Table 1: identifiers, location, QoS, tunnels — *and* the
/// bandwidth counters at the gateways.
#[derive(Debug, Clone, Default)]
pub struct UserSession {
    pub imsi: u64,
    pub ue_ip: u32,
    /// S1-U: eNodeB-side downlink tunnel.
    pub enb_teid: u32,
    pub enb_ip: u32,
    /// S1-U: S-GW-side uplink tunnel (what the eNodeB sends to).
    pub sgw_teid: u32,
    /// S5: P-GW-side tunnel (what the S-GW forwards uplink into).
    pub pgw_teid: u32,
    pub qci: u8,
    pub ambr_kbps: u32,
    /// Location (MME copy maintains it; gateways carry it anyway —
    /// duplicated state is the point).
    pub ecgi: u32,
    // Gateway bandwidth counters (unused at the MME — still present in
    // its copy, as the paper's state analysis found).
    pub ul_packets: u64,
    pub ul_bytes: u64,
    pub dl_packets: u64,
    pub dl_bytes: u64,
}

/// The Mobility Management Entity: terminates signaling, drives the
/// gateways over GTP-C.
pub struct Mme {
    /// MME's copy of every user's session.
    pub sessions: HashMap<u64, UserSession>,
    /// Outstanding GTP-C transactions: sequence number → IMSI.
    pending: HashMap<u32, u64>,
    next_seq: u32,
    next_teid: u32,
    next_ue_ip: u32,
}

impl Mme {
    pub fn new(teid_base: u32, ue_ip_base: u32) -> Self {
        Mme {
            sessions: HashMap::new(),
            pending: HashMap::new(),
            next_seq: 1,
            next_teid: teid_base,
            next_ue_ip: ue_ip_base,
        }
    }

    fn next_seq(&mut self) -> u32 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Begin an attach: create the MME's copy and produce the GTP-C
    /// Create Session Request for the S-GW (S11).
    pub fn begin_attach(&mut self, imsi: u64) -> Vec<u8> {
        let (sgw_teid, ue_ip) = match self.sessions.get(&imsi) {
            Some(s) => (s.sgw_teid, s.ue_ip), // re-attach reuses ids
            None => {
                let teid = self.next_teid;
                self.next_teid += 1;
                let ip = self.next_ue_ip;
                self.next_ue_ip += 1;
                (teid, ip)
            }
        };
        let session = UserSession { imsi, ue_ip, sgw_teid, qci: 9, ambr_kbps: 100_000, ..UserSession::default() };
        self.sessions.insert(imsi, session);
        let seq = self.next_seq();
        self.pending.insert(seq, imsi);
        GtpcMsg::CreateSessionRequest {
            seq,
            imsi,
            sender_cteid: seq, // control TEIDs unused further; echo seq
            bearer_teid: sgw_teid,
            ue_ip,
            qci: 9,
            ambr_kbps: 100_000,
        }
        .encode()
    }

    /// Complete an attach from the S-GW's Create Session Response,
    /// correlated by the GTP-C sequence number.
    pub fn complete_attach(&mut self, rsp: &[u8]) -> bool {
        match GtpcMsg::decode(rsp) {
            Ok(GtpcMsg::CreateSessionResponse { seq, ue_ip, cause, .. }) if cause == GtpcMsg::CAUSE_ACCEPTED => {
                match self.pending.remove(&seq) {
                    Some(imsi) => {
                        // Record any gateway-assigned values in the MME copy.
                        if let Some(s) = self.sessions.get_mut(&imsi) {
                            s.ue_ip = ue_ip;
                        }
                        true
                    }
                    None => false,
                }
            }
            _ => false,
        }
    }

    /// Begin an S1 handover: update the MME's copy, emit the Modify
    /// Bearer Request for the S-GW.
    pub fn begin_handover(&mut self, imsi: u64, enb_teid: u32, enb_ip: u32) -> Option<Vec<u8>> {
        let s = self.sessions.get_mut(&imsi)?;
        s.enb_teid = enb_teid;
        s.enb_ip = enb_ip;
        let seq = self.next_seq();
        Some(GtpcMsg::ModifyBearerRequest { seq, imsi, enb_teid, enb_ip }.encode())
    }

    /// Begin a detach: drop the MME copy, emit Delete Session Request.
    pub fn begin_detach(&mut self, imsi: u64) -> Option<Vec<u8>> {
        self.sessions.remove(&imsi)?;
        let seq = self.next_seq();
        Some(GtpcMsg::DeleteSessionRequest { seq, imsi }.encode())
    }
}

/// A gateway's flat session table: one RwLock over the whole map ("store
/// all user state in a single table", §3.2). Keyed twice like real
/// gateways: by tunnel id for uplink, by UE IP for downlink.
pub struct GatewayTable {
    pub by_teid: RwLock<HashMap<u32, UserSession>>,
    /// UE IP → TEID key into `by_teid`.
    pub by_ue_ip: RwLock<HashMap<u32, u32>>,
    /// IMSI → TEID key into `by_teid` (control-plane lookups).
    pub by_imsi: RwLock<HashMap<u64, u32>>,
}

impl GatewayTable {
    fn new() -> Self {
        GatewayTable {
            by_teid: RwLock::new(HashMap::new()),
            by_ue_ip: RwLock::new(HashMap::new()),
            by_imsi: RwLock::new(HashMap::new()),
        }
    }

    fn insert(&self, key_teid: u32, session: UserSession) {
        self.by_ue_ip.write().insert(session.ue_ip, key_teid);
        self.by_imsi.write().insert(session.imsi, key_teid);
        self.by_teid.write().insert(key_teid, session);
    }

    fn remove_by_imsi(&self, imsi: u64) -> bool {
        let key = self.by_imsi.write().remove(&imsi);
        match key {
            Some(teid) => {
                if let Some(s) = self.by_teid.write().remove(&teid) {
                    self.by_ue_ip.write().remove(&s.ue_ip);
                }
                true
            }
            None => false,
        }
    }

    pub fn len(&self) -> usize {
        self.by_teid.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The Serving Gateway.
pub struct Sgw {
    pub table: GatewayTable,
    next_s5_teid: u32,
}

impl Sgw {
    pub fn new(s5_teid_base: u32) -> Self {
        Sgw { table: GatewayTable::new(), next_s5_teid: s5_teid_base }
    }

    /// Handle a GTP-C message from the MME (S11). For a Create Session,
    /// returns the request to forward to the P-GW (S5) — the classic
    /// chain of duplicated installs.
    #[allow(clippy::result_unit_err)] // decode failure carries no detail
    pub fn handle_s11(&mut self, msg: &[u8]) -> Result<SgwAction, ()> {
        match GtpcMsg::decode(msg).map_err(|_| ())? {
            GtpcMsg::CreateSessionRequest { seq, imsi, bearer_teid, ue_ip, qci, ambr_kbps, .. } => {
                let pgw_teid = self.next_s5_teid;
                self.next_s5_teid += 1;
                // S-GW's own copy.
                let session = UserSession {
                    imsi,
                    ue_ip,
                    sgw_teid: bearer_teid,
                    pgw_teid,
                    qci,
                    ambr_kbps,
                    ..UserSession::default()
                };
                self.table.insert(bearer_teid, session);
                Ok(SgwAction::ForwardToPgw(
                    GtpcMsg::CreateSessionRequest {
                        seq,
                        imsi,
                        sender_cteid: bearer_teid,
                        bearer_teid: pgw_teid,
                        ue_ip,
                        qci,
                        ambr_kbps,
                    }
                    .encode(),
                ))
            }
            GtpcMsg::ModifyBearerRequest { seq, imsi, enb_teid, enb_ip } => {
                let key = self.table.by_imsi.read().get(&imsi).copied();
                let mut t = self.table.by_teid.write();
                match key.and_then(|k| t.get_mut(&k)) {
                    Some(s) => {
                        s.enb_teid = enb_teid;
                        s.enb_ip = enb_ip;
                        Ok(SgwAction::Respond(
                            GtpcMsg::ModifyBearerResponse { seq, cause: GtpcMsg::CAUSE_ACCEPTED }.encode(),
                        ))
                    }
                    None => Ok(SgwAction::Respond(
                        GtpcMsg::ModifyBearerResponse { seq, cause: GtpcMsg::CAUSE_CONTEXT_NOT_FOUND }.encode(),
                    )),
                }
            }
            GtpcMsg::DeleteSessionRequest { seq, imsi } => {
                let found = self.table.remove_by_imsi(imsi);
                Ok(SgwAction::ForwardDeleteToPgw(GtpcMsg::DeleteSessionRequest { seq, imsi }.encode(), found))
            }
            _ => Err(()),
        }
    }

    /// Absorb the P-GW's Create Session Response and produce the S11
    /// response for the MME.
    #[allow(clippy::result_unit_err)] // decode failure carries no detail
    pub fn finish_create(&mut self, pgw_rsp: &[u8]) -> Result<Vec<u8>, ()> {
        match GtpcMsg::decode(pgw_rsp).map_err(|_| ())? {
            GtpcMsg::CreateSessionResponse { seq, sender_cteid, bearer_teid, ue_ip, cause } => {
                // Record the P-GW's allocated tunnel in the S-GW copy.
                let mut t = self.table.by_teid.write();
                if let Some(s) = t.get_mut(&sender_cteid) {
                    s.pgw_teid = bearer_teid;
                }
                Ok(GtpcMsg::CreateSessionResponse { seq, sender_cteid, bearer_teid: sender_cteid, ue_ip, cause }
                    .encode())
            }
            _ => Err(()),
        }
    }
}

/// What the S-GW wants done after an S11 message.
pub enum SgwAction {
    /// Forward this GTP-C request over S5 to the P-GW.
    ForwardToPgw(Vec<u8>),
    /// Forward a delete; bool = whether the S-GW had the session.
    ForwardDeleteToPgw(Vec<u8>, bool),
    /// Respond directly to the MME.
    Respond(Vec<u8>),
}

/// The Packet Gateway.
pub struct Pgw {
    pub table: GatewayTable,
}

impl Pgw {
    pub fn new() -> Self {
        Pgw { table: GatewayTable::new() }
    }

    /// Handle a GTP-C message from the S-GW (S5); returns the response.
    #[allow(clippy::result_unit_err)] // decode failure carries no detail
    pub fn handle_s5(&mut self, msg: &[u8]) -> Result<Vec<u8>, ()> {
        match GtpcMsg::decode(msg).map_err(|_| ())? {
            GtpcMsg::CreateSessionRequest { seq, imsi, sender_cteid, bearer_teid, ue_ip, qci, ambr_kbps } => {
                // P-GW's own copy — the third duplicate.
                let session = UserSession {
                    imsi,
                    ue_ip,
                    sgw_teid: sender_cteid,
                    pgw_teid: bearer_teid,
                    qci,
                    ambr_kbps,
                    ..UserSession::default()
                };
                self.table.insert(bearer_teid, session);
                Ok(GtpcMsg::CreateSessionResponse {
                    seq,
                    sender_cteid,
                    bearer_teid,
                    ue_ip,
                    cause: GtpcMsg::CAUSE_ACCEPTED,
                }
                .encode())
            }
            GtpcMsg::DeleteSessionRequest { seq, imsi } => {
                let cause = if self.table.remove_by_imsi(imsi) {
                    GtpcMsg::CAUSE_ACCEPTED
                } else {
                    GtpcMsg::CAUSE_CONTEXT_NOT_FOUND
                };
                Ok(GtpcMsg::DeleteSessionResponse { seq, cause }.encode())
            }
            _ => Err(()),
        }
    }
}

impl Default for Pgw {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_chain_duplicates_state_three_times() {
        let mut mme = Mme::new(0x1000, 0x0A000001);
        let mut sgw = Sgw::new(0x5000);
        let mut pgw = Pgw::new();

        let s11 = mme.begin_attach(42);
        let action = sgw.handle_s11(&s11).unwrap();
        let s5 = match action {
            SgwAction::ForwardToPgw(m) => m,
            _ => panic!("expected forward"),
        };
        let s5_rsp = pgw.handle_s5(&s5).unwrap();
        let s11_rsp = sgw.finish_create(&s5_rsp).unwrap();
        assert!(mme.complete_attach(&s11_rsp));

        // The same user now exists in THREE places.
        assert!(mme.sessions.contains_key(&42));
        assert_eq!(sgw.table.len(), 1);
        assert_eq!(pgw.table.len(), 1);
        // And the gateway copies agree on the S5 tunnel.
        let sgw_s5 = sgw.table.by_teid.read().values().next().unwrap().pgw_teid;
        let pgw_s5 = *pgw.table.by_teid.read().keys().next().unwrap();
        assert_eq!(sgw_s5, pgw_s5);
    }

    #[test]
    fn handover_updates_mme_and_sgw_copies() {
        let mut mme = Mme::new(0x1000, 0x0A000001);
        let mut sgw = Sgw::new(0x5000);
        let mut pgw = Pgw::new();
        let s11 = mme.begin_attach(42);
        if let SgwAction::ForwardToPgw(s5) = sgw.handle_s11(&s11).unwrap() {
            let rsp = pgw.handle_s5(&s5).unwrap();
            sgw.finish_create(&rsp).unwrap();
        }
        let mb = mme.begin_handover(42, 0xE1, 0xC0A80002).unwrap();
        match sgw.handle_s11(&mb).unwrap() {
            SgwAction::Respond(rsp) => {
                assert!(matches!(
                    GtpcMsg::decode(&rsp).unwrap(),
                    GtpcMsg::ModifyBearerResponse { cause: GtpcMsg::CAUSE_ACCEPTED, .. }
                ));
            }
            _ => panic!(),
        }
        assert_eq!(mme.sessions[&42].enb_teid, 0xE1);
        assert_eq!(sgw.table.by_teid.read().values().next().unwrap().enb_teid, 0xE1);
    }

    #[test]
    fn handover_for_unknown_user_reports_context_not_found() {
        let mut sgw = Sgw::new(0x5000);
        let mb = GtpcMsg::ModifyBearerRequest { seq: 1, imsi: 99, enb_teid: 1, enb_ip: 2 }.encode();
        match sgw.handle_s11(&mb).unwrap() {
            SgwAction::Respond(rsp) => {
                assert!(matches!(
                    GtpcMsg::decode(&rsp).unwrap(),
                    GtpcMsg::ModifyBearerResponse { cause: GtpcMsg::CAUSE_CONTEXT_NOT_FOUND, .. }
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn detach_chain_removes_all_copies() {
        let mut mme = Mme::new(0x1000, 0x0A000001);
        let mut sgw = Sgw::new(0x5000);
        let mut pgw = Pgw::new();
        let s11 = mme.begin_attach(42);
        if let SgwAction::ForwardToPgw(s5) = sgw.handle_s11(&s11).unwrap() {
            let rsp = pgw.handle_s5(&s5).unwrap();
            sgw.finish_create(&rsp).unwrap();
        }
        let del = mme.begin_detach(42).unwrap();
        match sgw.handle_s11(&del).unwrap() {
            SgwAction::ForwardDeleteToPgw(fwd, found) => {
                assert!(found);
                let rsp = pgw.handle_s5(&fwd).unwrap();
                assert!(matches!(
                    GtpcMsg::decode(&rsp).unwrap(),
                    GtpcMsg::DeleteSessionResponse { cause: GtpcMsg::CAUSE_ACCEPTED, .. }
                ));
            }
            _ => panic!(),
        }
        assert!(mme.sessions.is_empty());
        assert!(sgw.table.is_empty());
        assert!(pgw.table.is_empty());
    }

    #[test]
    fn reattach_reuses_identifiers() {
        let mut mme = Mme::new(0x1000, 0x0A000001);
        let s11_a = mme.begin_attach(42);
        let s11_b = mme.begin_attach(42);
        let teid = |m: &[u8]| match GtpcMsg::decode(m).unwrap() {
            GtpcMsg::CreateSessionRequest { bearer_teid, .. } => bearer_teid,
            _ => panic!(),
        };
        assert_eq!(teid(&s11_a), teid(&s11_b));
    }

    #[test]
    fn malformed_gtpc_rejected() {
        let mut sgw = Sgw::new(1);
        assert!(sgw.handle_s11(&[0xFF, 0x00]).is_err());
        let mut pgw = Pgw::new();
        assert!(pgw.handle_s5(&[]).is_err());
    }
}
