//! Baseline presets and calibration parameters.

/// Which comparison system to emulate (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselinePreset {
    /// "An industrial software EPC implementation developed in
    /// collaboration between carriers and our industrial partners":
    /// DPDK fast I/O, GTP + Application Detection and Control.
    Industrial1,
    /// The industrial EPC studied in Rajan et al., LANMAN'15: DPDK,
    /// GTP but no ADC/PCEF.
    Industrial2,
    /// OpenAirInterface release 0.2: kernel networking path (no DPDK).
    Oai,
    /// OpenEPC (PhantomNet images): kernel path, heavier synchronization
    /// (the paper cites 2–3 ms MME→S/P-GW state-sync latency).
    OpenEpc,
}

/// Tunable mechanism parameters for the classic EPC.
///
/// `sync_window_ns` is the time one GTP-C hop blocks the gateway data
/// path (transaction + IPC round trip in the real systems); calibrated
/// per preset from the behaviour the paper reports:
/// Industrial#1 collapses just past 10 K attaches/s (§2.2, Fig 4/6) ⇒
/// ~2×35 µs per attach; Industrial#2 loses 15% at 3 K events/s ⇒ ~2×18 µs;
/// OpenEPC's measured sync is 2–3 ms ⇒ 1.25 ms per hop.
#[derive(Debug, Clone, Copy)]
pub struct ClassicConfig {
    pub preset: BaselinePreset,
    /// Busy-work charged per packet for kernel-path networking
    /// (syscall + copy costs DPDK bypasses). 0 = kernel bypass.
    pub per_packet_kernel_ns: u64,
    /// Data-path stall per GTP-C hop during signaling transactions.
    pub sync_window_ns: u64,
    /// Run ADC (application detection) on the data path.
    pub adc_enabled: bool,
}

impl ClassicConfig {
    pub fn preset(preset: BaselinePreset) -> Self {
        match preset {
            BaselinePreset::Industrial1 => {
                ClassicConfig { preset, per_packet_kernel_ns: 0, sync_window_ns: 35_000, adc_enabled: true }
            }
            BaselinePreset::Industrial2 => {
                ClassicConfig { preset, per_packet_kernel_ns: 0, sync_window_ns: 18_000, adc_enabled: false }
            }
            BaselinePreset::Oai => {
                ClassicConfig { preset, per_packet_kernel_ns: 2_000, sync_window_ns: 500_000, adc_enabled: false }
            }
            BaselinePreset::OpenEpc => {
                ClassicConfig { preset, per_packet_kernel_ns: 2_500, sync_window_ns: 1_250_000, adc_enabled: false }
            }
        }
    }

    /// A mechanism-only configuration: no calibrated stalls at all.
    /// Isolates the *structural* costs (duplicated state, double tunnel,
    /// flat tables) for ablation benchmarks.
    pub fn mechanisms_only(preset: BaselinePreset) -> Self {
        ClassicConfig { per_packet_kernel_ns: 0, sync_window_ns: 0, ..Self::preset(preset) }
    }
}

/// Busy-wait for `ns` nanoseconds (stands in for work this host cannot
/// perform: kernel crossings, cross-process IPC).
#[inline]
pub fn busy_wait_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = std::time::Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_reflect_paper_descriptions() {
        let i1 = ClassicConfig::preset(BaselinePreset::Industrial1);
        assert!(i1.adc_enabled, "Industrial#1 ships ADC");
        assert_eq!(i1.per_packet_kernel_ns, 0, "Industrial#1 uses DPDK");
        let i2 = ClassicConfig::preset(BaselinePreset::Industrial2);
        assert!(!i2.adc_enabled, "Industrial#2 has no ADC/PCEF");
        let oai = ClassicConfig::preset(BaselinePreset::Oai);
        assert!(oai.per_packet_kernel_ns > 0, "OAI has no kernel bypass");
        let oe = ClassicConfig::preset(BaselinePreset::OpenEpc);
        assert!(oe.sync_window_ns >= 1_000_000, "OpenEPC sync is 2-3ms per attach");
    }

    #[test]
    fn mechanisms_only_strips_calibration() {
        let m = ClassicConfig::mechanisms_only(BaselinePreset::Industrial1);
        assert_eq!(m.sync_window_ns, 0);
        assert_eq!(m.per_packet_kernel_ns, 0);
        assert!(m.adc_enabled, "structural features kept");
    }

    #[test]
    fn busy_wait_waits() {
        let t = std::time::Instant::now();
        busy_wait_ns(200_000);
        assert!(t.elapsed().as_nanos() >= 200_000);
        busy_wait_ns(0); // no-op
    }
}
