//! # pepc-baseline — the classic EPC the paper compares against
//!
//! A faithful implementation of the *mechanisms* behind the baselines in
//! the paper's evaluation (§5.2): an EPC decomposed by traffic type into
//! MME, S-GW and P-GW, where
//!
//! * per-user state is **duplicated** — each component installs and owns
//!   its own copy, created/updated via GTP-C messages on S11 and S5
//!   (serialized and parsed as bytes, as between real processes);
//! * each component stores users in a **single flat table** (the design
//!   the paper contrasts with PEPC's two-level tables);
//! * signaling is processed **in-line with data** on the gateway path, so
//!   every attach/handover transaction stalls packet processing for the
//!   duration of the cross-component synchronization;
//! * the data path traverses **two tunnel hops** (S1-U decap at the S-GW,
//!   S5 re-encap toward the P-GW, S5 decap at the P-GW) with a state
//!   lookup at each gateway — the structural overhead PEPC's
//!   consolidation removes.
//!
//! Presets ([`config::BaselinePreset`]) reproduce the four comparison
//! systems: `Industrial1` (DPDK, ADC), `Industrial2` (DPDK, no ADC/PCEF),
//! `Oai` and `OpenEpc` (kernel networking path). Since the industrial
//! systems are closed binaries and this host cannot run multi-process
//! IPC meaningfully, the *duration* of each GTP-C synchronization window
//! and the per-packet kernel-path cost are parameters calibrated from the
//! behaviour the paper reports (documented in DESIGN.md §2 and
//! EXPERIMENTS.md); the *mechanisms* — duplicated writes, transactional
//! blocking, flat tables, double tunnel processing — are all real code.

pub mod classic;
pub mod components;
pub mod config;

pub use classic::{ClassicEpc, ClassicVerdict};
pub use components::{Mme, Pgw, Sgw, UserSession};
pub use config::{BaselinePreset, ClassicConfig};
