//! Evaluation parameters and default values — paper Table 2.

/// Table 2 of the paper, verbatim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Defaults;

impl Defaults {
    /// Ratio of uplink to downlink traffic (1:3).
    pub const UPLINK_PER_DOWNLINK: (u32, u32) = (1, 3);
    /// Downlink packet size, bytes.
    pub const DOWNLINK_PACKET_BYTES: usize = 64;
    /// Uplink packet size, bytes (on the wire, GTP-U included).
    pub const UPLINK_PACKET_BYTES: usize = 128;
    /// Default signaling event type: attach request.
    pub const SIGNALING_EVENT: &'static str = "attach request";
    /// Signaling events per second.
    pub const SIGNALING_EVENTS_PER_SEC: u64 = 100_000;
    /// Number of users.
    pub const USERS: u64 = 1_000_000;

    /// First IMSI of the synthetic subscriber block.
    pub const IMSI_BASE: u64 = 404_01_0000000000;
    /// eNodeB transport address used by the generator.
    pub const ENB_IP: u32 = 0xC0A8_0001;
    /// PEPC/S-GW gateway address packets are tunnelled to.
    pub const GW_IP: u32 = 0x0AFE_0001;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        assert_eq!(Defaults::UPLINK_PER_DOWNLINK, (1, 3));
        assert_eq!(Defaults::DOWNLINK_PACKET_BYTES, 64);
        assert_eq!(Defaults::UPLINK_PACKET_BYTES, 128);
        assert_eq!(Defaults::SIGNALING_EVENTS_PER_SEC, 100_000);
        assert_eq!(Defaults::USERS, 1_000_000);
    }
}
