//! Device populations for the customization and two-level-table studies.

/// A synthetic device population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Population {
    /// Total devices.
    pub total: u64,
    /// Fraction that are stateless IoT devices (Figure 15's sweep).
    pub iot_fraction: f64,
    /// Fraction that are always-on — state pinned in the primary table
    /// (Figure 14's sweep).
    pub always_on_fraction: f64,
    /// Fraction of all devices moving into AND out of the primary table
    /// per second ("Low churn" = 0.01, "High churn" = 0.10 in §7.3).
    pub churn_per_sec: f64,
}

impl Population {
    /// A plain all-smartphone, all-active population.
    pub fn uniform(total: u64) -> Self {
        Population { total, iot_fraction: 0.0, always_on_fraction: 1.0, churn_per_sec: 0.0 }
    }

    /// Number of stateless IoT devices (they occupy the tail of the
    /// index space so pool membership is a range check).
    pub fn iot_count(&self) -> u64 {
        (self.total as f64 * self.iot_fraction).round() as u64
    }

    /// Number of regular (per-user-state) devices.
    pub fn regular_count(&self) -> u64 {
        self.total - self.iot_count()
    }

    /// Number of always-on devices among the regular ones.
    pub fn always_on_count(&self) -> u64 {
        (self.regular_count() as f64 * self.always_on_fraction).round() as u64
    }

    /// Devices churning (promoted + demoted) per second.
    pub fn churn_count_per_sec(&self) -> u64 {
        (self.total as f64 * self.churn_per_sec).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_population() {
        let p = Population::uniform(1000);
        assert_eq!(p.iot_count(), 0);
        assert_eq!(p.regular_count(), 1000);
        assert_eq!(p.always_on_count(), 1000);
        assert_eq!(p.churn_count_per_sec(), 0);
    }

    #[test]
    fn fig15_style_split() {
        let p = Population { total: 10_000_000, iot_fraction: 0.25, always_on_fraction: 1.0, churn_per_sec: 0.0 };
        assert_eq!(p.iot_count(), 2_500_000);
        assert_eq!(p.regular_count(), 7_500_000);
    }

    #[test]
    fn fig14_style_split() {
        let p = Population { total: 1_000_000, iot_fraction: 0.0, always_on_fraction: 0.01, churn_per_sec: 0.01 };
        assert_eq!(p.always_on_count(), 10_000);
        assert_eq!(p.churn_count_per_sec(), 10_000);
    }
}
