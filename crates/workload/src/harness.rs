//! The shared measurement harness: one loop, many systems.
//!
//! Every figure reports data-plane throughput (Mpps) and/or per-packet
//! latency while signaling runs at some rate. [`measure`] is that loop:
//! it interleaves signaling events (at their configured rate) with data
//! packets on one thread — exactly how a run-to-completion core
//! experiences the combined load — and reports what got through.
//!
//! [`SystemUnderTest`] adapts the two EPCs (PEPC slice, classic EPC) to
//! the loop, so every comparison runs byte-identical workloads.

use crate::signaling::{SigEvent, SignalingGen};
use crate::traffic::{read_timestamp, TrafficGen, UserKeys};
use pepc::ctrl::CtrlEvent;
use pepc::slice::Slice;
use pepc_baseline::ClassicEpc;
use pepc_fabric::{Clock, LatencyHistogram};
use pepc_net::Mbuf;
use std::time::{Duration, Instant};

/// What the measurement loop needs from an EPC.
pub trait SystemUnderTest {
    /// Apply one signaling event; false = rejected/unknown user.
    fn signal(&mut self, ev: SigEvent) -> bool;

    /// Process one data packet; `Some` returns the forwarded packet (for
    /// buffer recycling), `None` means it was dropped.
    fn process(&mut self, m: Mbuf) -> Option<Mbuf>;

    /// Process a whole burst, appending forwarded packets to `out` (for
    /// buffer recycling) and draining `burst`. Default: the scalar loop,
    /// so SUTs without a native burst path still run burst workloads.
    fn process_burst(&mut self, burst: &mut Vec<Mbuf>, out: &mut Vec<Mbuf>) {
        for m in burst.drain(..) {
            if let Some(fwd) = self.process(m) {
                out.push(fwd);
            }
        }
    }

    /// Attach `imsis` and return each user's data-plane keys in order.
    fn attach_all(&mut self, imsis: &[u64]) -> Vec<UserKeys>;

    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// The system's observability snapshot, when it has one (the classic
    /// EPC baseline predates the telemetry layer and returns `None`).
    fn telemetry(&self) -> Option<pepc::MetricsSnapshot> {
        None
    }
}

/// PEPC: an inline slice as the system under test (per-core numbers, as
/// the paper reports).
pub struct PepcSut {
    pub slice: Slice,
    name: &'static str,
    /// Reusable verdict buffer so the burst path stays malloc-free.
    verdicts: Vec<pepc::data::PacketVerdict>,
}

impl PepcSut {
    pub fn new(slice: Slice) -> Self {
        PepcSut { slice, name: "PEPC", verdicts: Vec::with_capacity(64) }
    }

    pub fn named(slice: Slice, name: &'static str) -> Self {
        PepcSut { slice, name, verdicts: Vec::with_capacity(64) }
    }

    /// Demote a user to the secondary table (two-level experiments).
    pub fn demote(&mut self, imsi: u64) {
        self.slice.ctrl.demote_user(imsi);
        // Push through the ring on the next packet sync; force it now so
        // churn ticks act immediately.
        self.slice.sync_now();
    }
}

impl SystemUnderTest for PepcSut {
    fn signal(&mut self, ev: SigEvent) -> bool {
        match ev {
            SigEvent::Attach { imsi } => self.slice.handle_ctrl_event(CtrlEvent::Attach { imsi }),
            SigEvent::S1Handover { imsi, new_enb_teid, new_enb_ip } => {
                self.slice.handle_ctrl_event(CtrlEvent::S1Handover { imsi, new_enb_teid, new_enb_ip })
            }
        }
    }

    fn process(&mut self, m: Mbuf) -> Option<Mbuf> {
        match self.slice.process_packet(m) {
            pepc::data::PacketVerdict::Forward(out) => Some(out),
            pepc::data::PacketVerdict::Drop(_) | pepc::data::PacketVerdict::Buffered => None,
        }
    }

    fn process_burst(&mut self, burst: &mut Vec<Mbuf>, out: &mut Vec<Mbuf>) {
        self.verdicts.clear();
        self.slice.process_burst_into(burst, &mut self.verdicts);
        for v in self.verdicts.drain(..) {
            if let pepc::data::PacketVerdict::Forward(fwd) = v {
                out.push(fwd);
            }
        }
    }

    fn attach_all(&mut self, imsis: &[u64]) -> Vec<UserKeys> {
        let mut keys = Vec::with_capacity(imsis.len());
        for &imsi in imsis {
            self.slice.handle_ctrl_event(CtrlEvent::Attach { imsi });
            let ctx = self.slice.ctrl.context_of(imsi).expect("attached");
            let c = ctx.ctrl_read();
            keys.push(UserKeys { teid: c.tunnels.gw_teid, ue_ip: c.ue_ip });
            drop(c);
            // Give the UE a serving eNodeB so downlink works.
            self.slice.handle_ctrl_event(CtrlEvent::S1Handover {
                imsi,
                new_enb_teid: 0xE000_0000 + (imsi as u32 & 0xFFFF),
                new_enb_ip: 0xC0A8_0001,
            });
        }
        self.slice.sync_now();
        keys
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn telemetry(&self) -> Option<pepc::MetricsSnapshot> {
        Some(pepc::MetricsSnapshot {
            slices: vec![self.slice.telemetry_snapshot(0)],
            wires: Vec::new(),
            shard_packets: Vec::new(),
        })
    }
}

/// The software-RSS sharded data path as the system under test: one
/// control plane feeding membership updates into N share-nothing
/// pipelines (`pepc::ShardedDataPath`). Signaling syncs immediately (the
/// steering stage is control-rate anyway), so throughput numbers isolate
/// the sharded data path itself.
pub struct ShardedSut {
    pub ctrl: pepc::ControlPlane,
    pub path: pepc::ShardedDataPath,
    clock: Clock,
    name: &'static str,
}

impl ShardedSut {
    pub fn new(path: pepc::ShardedDataPath) -> Self {
        use pepc::ctrl::Allocator;
        let ctrl = pepc::ControlPlane::new(
            crate::params::Defaults::GW_IP,
            1,
            Allocator { teid_base: 0x0100_0000, ue_ip_base: 0x0A00_0001, guti_base: 0xD00D_0000, mme_ue_id_base: 1 },
            None,
        );
        ShardedSut { ctrl, path, clock: Clock::new(), name: "PEPC-sharded" }
    }

    fn sync(&mut self) {
        if self.ctrl.has_updates() {
            let now = self.clock.now_ns();
            for u in self.ctrl.take_updates() {
                self.path.apply_update(u, now);
            }
        }
    }
}

impl SystemUnderTest for ShardedSut {
    fn signal(&mut self, ev: SigEvent) -> bool {
        let ok = match ev {
            SigEvent::Attach { imsi } => self.ctrl.apply_event(CtrlEvent::Attach { imsi }),
            SigEvent::S1Handover { imsi, new_enb_teid, new_enb_ip } => {
                self.ctrl.apply_event(CtrlEvent::S1Handover { imsi, new_enb_teid, new_enb_ip })
            }
        };
        self.sync();
        ok
    }

    fn process(&mut self, m: Mbuf) -> Option<Mbuf> {
        let mut burst = vec![m];
        let mut out = Vec::with_capacity(1);
        self.process_burst(&mut burst, &mut out);
        out.pop()
    }

    fn process_burst(&mut self, burst: &mut Vec<Mbuf>, out: &mut Vec<Mbuf>) {
        for v in self.path.process_burst(burst, self.clock.now_ns()) {
            if let pepc::data::PacketVerdict::Forward(fwd) = v {
                out.push(fwd);
            }
        }
    }

    fn attach_all(&mut self, imsis: &[u64]) -> Vec<UserKeys> {
        let mut keys = Vec::with_capacity(imsis.len());
        for &imsi in imsis {
            self.ctrl.apply_event(CtrlEvent::Attach { imsi });
            let ctx = self.ctrl.context_of(imsi).expect("attached");
            let c = ctx.ctrl_read();
            keys.push(UserKeys { teid: c.tunnels.gw_teid, ue_ip: c.ue_ip });
            drop(c);
            self.ctrl.apply_event(CtrlEvent::S1Handover {
                imsi,
                new_enb_teid: 0xE000_0000 + (imsi as u32 & 0xFFFF),
                new_enb_ip: 0xC0A8_0001,
            });
        }
        self.sync();
        keys
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Convenience: build an N-shard data path with the harness defaults
/// (two-level tables on, IoT off), sized for `expected_users`.
pub fn default_sharded_path(expected_users: usize, shards: usize) -> pepc::ShardedDataPath {
    use pepc::config::{IotConfig, TwoLevelConfig};
    pepc::ShardedDataPath::new(
        crate::params::Defaults::GW_IP,
        expected_users,
        TwoLevelConfig::default(),
        IotConfig::default(),
        shards,
    )
}

/// An HA cluster as the system under test: the same mixed workload the
/// single-slice figures use, but routed through the balancer into a
/// replicated multi-node cluster — chaos tests kill a node mid-run and
/// keep the loop going.
pub struct HaSut {
    pub ha: pepc_ha::HaCluster,
    /// Run one coordinator tick (replication, heartbeats, detection) every
    /// this many processed packets, so replication cadence scales with
    /// offered load instead of wall-clock.
    tick_every: u32,
    since_tick: u32,
    name: &'static str,
}

impl HaSut {
    pub fn new(ha: pepc_ha::HaCluster, tick_every: u32) -> Self {
        assert!(tick_every > 0);
        HaSut { ha, tick_every, since_tick: 0, name: "PEPC-HA cluster" }
    }

    /// Crash a node; the workload loop keeps running through the blackout
    /// and the coordinator recovers automatically.
    pub fn kill_node(&mut self, k: usize) {
        self.ha.kill_node(k);
    }
}

impl SystemUnderTest for HaSut {
    fn signal(&mut self, ev: SigEvent) -> bool {
        match ev {
            SigEvent::Attach { imsi } => self.ha.ctrl_event(CtrlEvent::Attach { imsi }),
            SigEvent::S1Handover { imsi, new_enb_teid, new_enb_ip } => {
                self.ha.ctrl_event(CtrlEvent::S1Handover { imsi, new_enb_teid, new_enb_ip })
            }
        }
    }

    fn process(&mut self, m: Mbuf) -> Option<Mbuf> {
        self.since_tick += 1;
        if self.since_tick >= self.tick_every {
            self.since_tick = 0;
            self.ha.tick();
        }
        match self.ha.process(m) {
            pepc::node::NodeVerdict::Forward(out) => Some(out),
            _ => None,
        }
    }

    fn attach_all(&mut self, imsis: &[u64]) -> Vec<UserKeys> {
        let mut keys = Vec::with_capacity(imsis.len());
        for &imsi in imsis {
            let k = self.ha.attach(imsi);
            self.ha.ctrl_event(CtrlEvent::S1Handover {
                imsi,
                new_enb_teid: 0xE000_0000 + (imsi as u32 & 0xFFFF),
                new_enb_ip: 0xC0A8_0001,
            });
            let node = self.ha.cluster().node(k);
            let s = node.demux().slice_for_imsi(imsi).expect("attached");
            let ctx = node.slice(s).ctrl.context_of(imsi).expect("attached");
            let c = ctx.ctrl_read();
            keys.push(UserKeys { teid: c.tunnels.gw_teid, ue_ip: c.ue_ip });
        }
        let n = self.ha.cluster().node_count();
        for k in 0..n {
            let slices = self.ha.cluster().node(k).slice_count();
            for s in 0..slices {
                self.ha.cluster().node(k).slice(s).sync_now();
            }
        }
        keys
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn telemetry(&self) -> Option<pepc::MetricsSnapshot> {
        Some(self.ha.metrics_snapshot())
    }
}

/// The classic EPC as the system under test.
pub struct ClassicSut {
    pub epc: ClassicEpc,
    clock: Clock,
    name: &'static str,
}

impl ClassicSut {
    pub fn new(epc: ClassicEpc, name: &'static str) -> Self {
        ClassicSut { epc, clock: Clock::new(), name }
    }
}

impl SystemUnderTest for ClassicSut {
    fn signal(&mut self, ev: SigEvent) -> bool {
        match ev {
            SigEvent::Attach { imsi } => self.epc.attach(imsi),
            SigEvent::S1Handover { imsi, new_enb_teid, new_enb_ip } => {
                self.epc.s1_handover(imsi, new_enb_teid, new_enb_ip)
            }
        }
    }

    fn process(&mut self, m: Mbuf) -> Option<Mbuf> {
        match self.epc.process(m, self.clock.now_ns()) {
            pepc_baseline::ClassicVerdict::Forward(out) => Some(out),
            pepc_baseline::ClassicVerdict::Drop => None,
        }
    }

    fn attach_all(&mut self, imsis: &[u64]) -> Vec<UserKeys> {
        let mut keys = Vec::with_capacity(imsis.len());
        for &imsi in imsis {
            assert!(self.epc.attach(imsi), "classic attach failed");
            self.epc.s1_handover(imsi, 0xE000_0000 + (imsi as u32 & 0xFFFF), 0xC0A8_0001);
            keys.push(UserKeys {
                teid: self.epc.uplink_teid(imsi).expect("attached"),
                ue_ip: self.epc.ue_ip(imsi).expect("attached"),
            });
        }
        keys
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Result of one measurement run.
#[derive(Debug)]
pub struct Measurement {
    /// Packets offered to the pipeline.
    pub offered: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Signaling events applied.
    pub events: u64,
    pub elapsed: Duration,
    /// Per-packet latency (generation → forward), when sampled.
    pub latency: Option<LatencyHistogram>,
    /// The SUT's observability snapshot, taken when the run ended.
    pub snapshot: Option<pepc::MetricsSnapshot>,
}

impl Measurement {
    /// Offered-load throughput in Mpps (the rate the core sustained,
    /// counting pipeline drops as processed work).
    pub fn mpps(&self) -> f64 {
        self.offered as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Forwarded (goodput) Mpps.
    pub fn forwarded_mpps(&self) -> f64 {
        self.forwarded as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Fraction of offered packets forwarded.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.forwarded as f64 / self.offered as f64
        }
    }

    /// One `p50/p99/p999` line per slice of the SUT's pipeline latency
    /// (empty when the SUT has no telemetry or recorded nothing).
    pub fn pipeline_latency_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if let Some(snap) = &self.snapshot {
            for s in &snap.slices {
                if s.pipeline_ns.count() > 0 {
                    let _ = writeln!(out, "slice {} pipeline {}", s.slice_id, s.pipeline_ns.summary());
                }
            }
        }
        out
    }
}

/// Options for [`measure`].
pub struct MeasureOpts {
    pub duration: Duration,
    /// Record latency for one in `latency_sample_every` packets
    /// (0 = no latency recording).
    pub latency_sample_every: u64,
    /// Burst size between signaling checks.
    pub burst: usize,
    /// Feed each burst through [`SystemUnderTest::process_burst`] instead
    /// of one packet at a time (the fig13b burst-path experiments).
    pub use_burst_api: bool,
}

impl Default for MeasureOpts {
    fn default() -> Self {
        MeasureOpts { duration: Duration::from_millis(300), latency_sample_every: 0, burst: 32, use_burst_api: false }
    }
}

/// Run the interleaved signaling + data loop against `sut` for the
/// configured duration. `on_tick` runs once per burst boundary with the
/// elapsed nanoseconds (figures hook churn / migrations here).
pub fn measure_with<S: SystemUnderTest + ?Sized>(
    sut: &mut S,
    gen: &mut TrafficGen,
    sig: Option<&mut SignalingGen>,
    opts: &MeasureOpts,
    mut on_tick: impl FnMut(&mut S, u64),
) -> Measurement {
    let mut latency = if opts.latency_sample_every > 0 { Some(LatencyHistogram::new()) } else { None };
    let clock = Clock::new();
    let start = Instant::now();
    let mut offered = 0u64;
    let mut forwarded = 0u64;
    let mut events = 0u64;
    let mut sig = sig;
    let mut burst_buf: Vec<Mbuf> = Vec::with_capacity(opts.burst);
    let mut fwd_buf: Vec<Mbuf> = Vec::with_capacity(opts.burst);
    loop {
        let elapsed_ns = clock.now_ns();
        if start.elapsed() >= opts.duration {
            break;
        }
        // Signaling due by now (cap per round so data still flows even
        // under overload, matching a real scheduler's fairness).
        if let Some(sig) = sig.as_deref_mut() {
            let due = sig.due(elapsed_ns).min(4096);
            for _ in 0..due {
                let ev = sig.next_event();
                sut.signal(ev);
                events += 1;
            }
        }
        on_tick(sut, elapsed_ns);
        if opts.use_burst_api {
            burst_buf.clear();
            for _ in 0..opts.burst {
                let m = gen.next_packet(clock.now_ns());
                burst_buf.push(m);
            }
            offered += burst_buf.len() as u64;
            fwd_buf.clear();
            sut.process_burst(&mut burst_buf, &mut fwd_buf);
            let done = clock.now_ns();
            for out in fwd_buf.drain(..) {
                forwarded += 1;
                if let Some(h) = latency.as_mut() {
                    if forwarded.is_multiple_of(opts.latency_sample_every) {
                        if let Some(t0) = read_timestamp(&out) {
                            h.record(done.saturating_sub(t0));
                        }
                    }
                }
                gen.recycle(out);
            }
        } else {
            for _ in 0..opts.burst {
                let now = clock.now_ns();
                let m = gen.next_packet(now);
                offered += 1;
                if let Some(out) = sut.process(m) {
                    forwarded += 1;
                    if let Some(h) = latency.as_mut() {
                        if forwarded.is_multiple_of(opts.latency_sample_every) {
                            if let Some(t0) = read_timestamp(&out) {
                                h.record(clock.now_ns().saturating_sub(t0));
                            }
                        }
                    }
                    gen.recycle(out);
                }
            }
        }
    }
    Measurement { offered, forwarded, events, elapsed: start.elapsed(), latency, snapshot: sut.telemetry() }
}

/// [`measure_with`] without a tick hook.
pub fn measure<S: SystemUnderTest + ?Sized>(
    sut: &mut S,
    gen: &mut TrafficGen,
    sig: Option<&mut SignalingGen>,
    opts: &MeasureOpts,
) -> Measurement {
    measure_with(sut, gen, sig, opts, |_, _| {})
}

/// Convenience: build an inline PEPC slice with the given batching and
/// table mode (shared by figures and examples).
pub fn default_pepc_slice(expected_users: usize, two_level: bool, sync_every: u32) -> Slice {
    use pepc::config::{BatchingConfig, SliceConfig, TwoLevelConfig};
    use pepc::ctrl::Allocator;
    let config = SliceConfig {
        batching: BatchingConfig { sync_every_packets: sync_every },
        two_level: TwoLevelConfig { enabled: two_level, idle_timeout_ns: 5_000_000_000 },
        expected_users,
        ..SliceConfig::default()
    };
    Slice::new(
        &config,
        crate::params::Defaults::GW_IP,
        1,
        Allocator { teid_base: 0x0100_0000, ue_ip_base: 0x0A00_0001, guti_base: 0xD00D_0000, mme_ue_id_base: 1 },
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signaling::EventMix;
    use pepc_baseline::{BaselinePreset, ClassicConfig};

    fn imsis(n: u64) -> Vec<u64> {
        (0..n).map(|i| crate::params::Defaults::IMSI_BASE + i).collect()
    }

    #[test]
    fn pepc_sut_measures_forwarding() {
        let mut sut = PepcSut::new(default_pepc_slice(64, true, 32));
        let keys = sut.attach_all(&imsis(16));
        let mut gen = TrafficGen::new(keys);
        let m = measure(
            &mut sut,
            &mut gen,
            None,
            &MeasureOpts { duration: Duration::from_millis(50), ..Default::default() },
        );
        assert!(m.offered > 1000, "offered {}", m.offered);
        assert!(m.delivery_ratio() > 0.99, "delivery {}", m.delivery_ratio());
        assert!(m.mpps() > 0.0);
    }

    #[test]
    fn burst_api_measures_forwarding() {
        let mut sut = PepcSut::new(default_pepc_slice(64, true, 32));
        let keys = sut.attach_all(&imsis(16));
        let mut gen = TrafficGen::new(keys);
        let m = measure(
            &mut sut,
            &mut gen,
            None,
            &MeasureOpts {
                duration: Duration::from_millis(50),
                use_burst_api: true,
                latency_sample_every: 16,
                ..Default::default()
            },
        );
        assert!(m.offered > 1000, "offered {}", m.offered);
        assert!(m.delivery_ratio() > 0.99, "delivery {}", m.delivery_ratio());
        assert!(m.latency.expect("sampled").count() > 10);
        let snap = m.snapshot.expect("telemetry");
        assert!(snap.conservation_holds());
        assert_eq!(snap.slices[0].pipeline_ns.count(), snap.slices[0].data.forwarded);
    }

    #[test]
    fn ha_sut_survives_a_mid_run_kill() {
        use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
        let template = EpcConfig {
            slices: 2,
            slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..SliceConfig::default() },
            ..EpcConfig::default()
        };
        let ha = pepc_ha::HaCluster::new(3, template, pepc_ha::HaConfig::default());
        let mut sut = HaSut::new(ha, 64);
        let keys = sut.attach_all(&imsis(24));
        let mut gen = TrafficGen::new(keys);
        let victim = sut.ha.owner_of(crate::params::Defaults::IMSI_BASE).unwrap();
        let mut killed = false;
        let m = measure_with(
            &mut sut,
            &mut gen,
            None,
            &MeasureOpts { duration: Duration::from_millis(60), ..Default::default() },
            |sut, elapsed_ns| {
                if !killed && elapsed_ns > 20_000_000 {
                    sut.kill_node(victim);
                    killed = true;
                }
            },
        );
        assert!(killed, "kill hook never fired");
        let snap = m.snapshot.as_ref().expect("telemetry");
        assert!(snap.conservation_holds());
        assert!(snap.data_totals().drop_failover > 0, "blackout should be visible");
        assert_eq!(sut.ha.failovers().len(), 1, "failover completed mid-run");
        // After recovery the blackout ends: delivery resumed, so forwarded
        // packets dominate the run despite the kill.
        assert!(m.delivery_ratio() > 0.5, "delivery {}", m.delivery_ratio());
    }

    #[test]
    fn classic_sut_runs_bursts_via_default_scalar_fallback() {
        let epc = ClassicEpc::new(ClassicConfig::mechanisms_only(BaselinePreset::Industrial1));
        let mut sut = ClassicSut::new(epc, "Industrial#1 (mechanisms)");
        let keys = sut.attach_all(&imsis(8));
        let mut gen = TrafficGen::new(keys);
        let m = measure(
            &mut sut,
            &mut gen,
            None,
            &MeasureOpts { duration: Duration::from_millis(30), use_burst_api: true, ..Default::default() },
        );
        assert!(m.delivery_ratio() > 0.99, "delivery {}", m.delivery_ratio());
    }

    #[test]
    fn classic_sut_measures_forwarding() {
        let epc = ClassicEpc::new(ClassicConfig::mechanisms_only(BaselinePreset::Industrial1));
        let mut sut = ClassicSut::new(epc, "Industrial#1 (mechanisms)");
        let keys = sut.attach_all(&imsis(16));
        let mut gen = TrafficGen::new(keys);
        let m = measure(
            &mut sut,
            &mut gen,
            None,
            &MeasureOpts { duration: Duration::from_millis(50), ..Default::default() },
        );
        assert!(m.delivery_ratio() > 0.99, "delivery {}", m.delivery_ratio());
    }

    #[test]
    fn signaling_rate_is_honoured() {
        let mut sut = PepcSut::new(default_pepc_slice(1024, true, 32));
        let keys = sut.attach_all(&imsis(64));
        let mut gen = TrafficGen::new(keys);
        let mut sig = SignalingGen::new(crate::params::Defaults::IMSI_BASE, 64, 50_000, EventMix::handovers_only());
        let m = measure(
            &mut sut,
            &mut gen,
            Some(&mut sig),
            &MeasureOpts { duration: Duration::from_millis(100), ..Default::default() },
        );
        // ~50K/s over 100ms ≈ 5000 events (loose bounds for CI noise).
        assert!((2000..8000).contains(&(m.events as usize)), "events {}", m.events);
    }

    #[test]
    fn latency_sampling_produces_histogram() {
        let mut sut = PepcSut::new(default_pepc_slice(64, true, 32));
        let keys = sut.attach_all(&imsis(4));
        let mut gen = TrafficGen::new(keys);
        let m = measure(
            &mut sut,
            &mut gen,
            None,
            &MeasureOpts { duration: Duration::from_millis(50), latency_sample_every: 16, ..Default::default() },
        );
        let h = m.latency.expect("sampled");
        assert!(h.count() > 10);
        assert!(h.quantile_ns(0.5) > 0, "median latency should be non-zero ns");
        assert!(h.quantile_ns(0.5) < 1_000_000, "inline pipeline is sub-ms");
    }

    #[test]
    fn measurement_carries_telemetry_snapshot() {
        let mut sut = PepcSut::new(default_pepc_slice(64, true, 32));
        let keys = sut.attach_all(&imsis(4));
        let mut gen = TrafficGen::new(keys);
        let m = measure(
            &mut sut,
            &mut gen,
            None,
            &MeasureOpts { duration: Duration::from_millis(20), ..Default::default() },
        );
        let snap = m.snapshot.as_ref().expect("PEPC SUT exports telemetry");
        assert!(snap.conservation_holds());
        assert_eq!(snap.slices[0].pipeline_ns.count(), snap.slices[0].data.forwarded);
        let report = m.pipeline_latency_report();
        assert!(report.contains("p99="), "{report}");

        // The classic baseline has none.
        let epc = ClassicEpc::new(ClassicConfig::mechanisms_only(BaselinePreset::Industrial1));
        let sut = ClassicSut::new(epc, "classic");
        assert!(sut.telemetry().is_none());
    }

    #[test]
    fn tick_hook_runs() {
        let mut sut = PepcSut::new(default_pepc_slice(64, true, 32));
        let keys = sut.attach_all(&imsis(4));
        let mut gen = TrafficGen::new(keys);
        let mut ticks = 0;
        measure_with(
            &mut sut,
            &mut gen,
            None,
            &MeasureOpts { duration: Duration::from_millis(20), ..Default::default() },
            |_, _| ticks += 1,
        );
        assert!(ticks > 0);
    }

    #[test]
    fn pepc_and_classic_run_identical_workloads() {
        // The generator is deterministic: the same seed drives both SUTs
        // with the same packet sequence modulo user keys.
        let mut a = PepcSut::new(default_pepc_slice(64, true, 32));
        let ka = a.attach_all(&imsis(8));
        let mut b = ClassicSut::new(
            ClassicEpc::new(ClassicConfig::mechanisms_only(BaselinePreset::Industrial2)),
            "Industrial#2",
        );
        let kb = b.attach_all(&imsis(8));
        assert_eq!(ka.len(), kb.len());
        // Both forward their whole streams.
        for (sut, keys) in [(&mut a as &mut dyn SystemUnderTest, ka), (&mut b as &mut dyn SystemUnderTest, kb)] {
            let mut gen = TrafficGen::new(keys);
            let mut ok = 0;
            for _ in 0..1000 {
                let m = gen.next_packet(0);
                if let Some(out) = sut.process(m) {
                    ok += 1;
                    gen.recycle(out);
                }
            }
            assert_eq!(ok, 1000, "{}", sut.name());
        }
    }
}
