//! Data-traffic generation: GTP-U uplink and plain-IP downlink packets
//! over a user population, with buffer recycling so generation cost stays
//! small and identical for every system under test.

use crate::params::Defaults;
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};

/// The data-plane keys the generator must stamp per user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserKeys {
    /// Gateway-side uplink TEID (outer GTP-U).
    pub teid: u32,
    /// UE IP (downlink destination / uplink inner source).
    pub ue_ip: u32,
}

/// Generates the Table 2 traffic mix across a population.
pub struct TrafficGen {
    users: Vec<UserKeys>,
    /// UL:DL mix, e.g. (1, 3).
    ul: u32,
    dl: u32,
    mix_pos: u32,
    /// Multiplicative LCG state for user selection (uniform, cheap,
    /// deterministic).
    lcg: u64,
    pool: Vec<Mbuf>,
    uplink_payload: usize,
    downlink_payload: usize,
    enb_ip: u32,
    gw_ip: u32,
    generated: u64,
    /// Prebuilt wire images: `[uplink, downlink]`. Per-packet generation
    /// is one memcpy plus four field patches; see [`DirTemplate`].
    templates: [DirTemplate; 2],
}

/// Headroom kept in recycled buffers (enough for one more outer stack).
const GEN_HEADROOM: usize = 64;

/// A fully emitted packet image for one direction with the per-user /
/// per-packet fields located by sentinel scan at construction.
///
/// Only four things vary between packets of a direction: the user IP,
/// the uplink TEID, the IP checksum covering the user IP, and the
/// payload timestamp. Emitting headers per packet (two header emits, a
/// full checksum, a GTP-U encap, and a zeroed payload buffer) costs more
/// than the whole lock protocol under measurement, so the harness pays
/// it once here and memcpy-patches afterwards. Packet bytes are
/// identical to the emit path's output for the same user and timestamp.
#[derive(Default)]
struct DirTemplate {
    bytes: Vec<u8>,
    /// Offset of the 4-byte user IP (uplink: inner source; downlink:
    /// destination). The template stores zero there.
    user_off: usize,
    /// Offset of the IPv4 checksum covering `user_off`.
    csum_off: usize,
    /// Checksum value with the user IP zeroed; the per-user checksum is
    /// derived from it by one's-complement-adding the user IP words.
    csum_base: u16,
    /// Offset of the 8-byte payload timestamp.
    ts_off: usize,
    /// Offset of the GTP-U TEID (`usize::MAX` for downlink: no tunnel).
    teid_off: usize,
}

/// RFC 1071 checksum over an IPv4 header slice (checksum field must be
/// zeroed by the caller).
fn ipv4_csum(h: &[u8]) -> u16 {
    let mut s = 0u32;
    for w in h.chunks(2) {
        s += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    while s >> 16 != 0 {
        s = (s & 0xFFFF) + (s >> 16);
    }
    !(s as u16)
}

fn find(hay: &[u8], needle: &[u8]) -> usize {
    hay.windows(needle.len()).position(|w| w == needle).expect("sentinel present in emitted packet")
}

impl DirTemplate {
    /// Locate the variable fields in an emitted sentinel packet and zero
    /// the user field (rebasing the checksum accordingly).
    fn from_sentinel(m: &Mbuf, ue_ip: u32, teid: Option<u32>, ts: u64, user_field_off: usize) -> Self {
        let d = m.data();
        let user_off = find(d, &ue_ip.to_be_bytes());
        let ts_off = find(d, &ts.to_be_bytes());
        let teid_off = teid.map_or(usize::MAX, |t| find(d, &t.to_be_bytes()));
        // The user IP lives `user_field_off` bytes into its IPv4 header.
        let hdr = user_off - user_field_off;
        let csum_off = hdr + 10;
        let mut bytes = d.to_vec();
        bytes[user_off..user_off + 4].fill(0);
        bytes[csum_off..csum_off + 2].fill(0);
        let csum_base = ipv4_csum(&bytes[hdr..hdr + 20]);
        bytes[csum_off..csum_off + 2].copy_from_slice(&csum_base.to_be_bytes());
        DirTemplate { bytes, user_off, csum_off, csum_base, ts_off, teid_off }
    }
}

impl TrafficGen {
    /// A generator over `users`, with the default Table 2 mix and sizes.
    pub fn new(users: Vec<UserKeys>) -> Self {
        assert!(!users.is_empty(), "need at least one user");
        let (ul, dl) = Defaults::UPLINK_PER_DOWNLINK;
        // Wire sizes: uplink 128 B including the outer stack, downlink
        // 64 B plain IP. Inner payloads are what remains after headers.
        let uplink_payload = Defaults::UPLINK_PACKET_BYTES - pepc_net::gtp::GTPU_OVERHEAD - IPV4_HDR_LEN - UDP_HDR_LEN;
        let downlink_payload = Defaults::DOWNLINK_PACKET_BYTES - IPV4_HDR_LEN - UDP_HDR_LEN;
        let mut g = TrafficGen {
            users,
            ul,
            dl,
            mix_pos: 0,
            lcg: 0x853c_49e6_748f_ea9b,
            pool: Vec::with_capacity(128),
            uplink_payload,
            downlink_payload,
            enb_ip: Defaults::ENB_IP,
            gw_ip: Defaults::GW_IP,
            generated: 0,
            templates: Default::default(),
        };
        // Emit one sentinel packet per direction and lift the wire
        // images into patchable templates. The sentinels are values
        // guaranteed not to collide with the constant header fields.
        let s = UserKeys { teid: 0xA5A5_5A5A, ue_ip: 0x5AA5_A55A };
        const TS: u64 = 0xDEAD_C0DE_1234_5678;
        let up = g.emit_uplink(s, TS);
        // The user IP is the inner source (offset 12 in its header).
        g.templates[0] = DirTemplate::from_sentinel(&up, s.ue_ip, Some(s.teid), TS, 12);
        g.recycle(up);
        let down = g.emit_downlink(s, TS);
        // The user IP is the destination (offset 16 in its header).
        g.templates[1] = DirTemplate::from_sentinel(&down, s.ue_ip, None, TS, 16);
        g.recycle(down);
        g
    }

    /// Override the UL:DL mix (e.g. (1, 3) for Industrial#2 comparisons
    /// flipped to 3:1).
    pub fn with_mix(mut self, ul: u32, dl: u32) -> Self {
        assert!(ul + dl > 0);
        self.ul = ul;
        self.dl = dl;
        self
    }

    /// Number of users in the population.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Total packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    #[inline]
    fn next_user(&mut self) -> UserKeys {
        // PCG-ish multiplicative step; upper bits select the user.
        self.lcg = self.lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let idx = ((self.lcg >> 33) as usize) % self.users.len();
        self.users[idx]
    }

    #[inline]
    fn buffer(&mut self) -> Mbuf {
        match self.pool.pop() {
            Some(mut m) => {
                m.clear(GEN_HEADROOM);
                m
            }
            None => Mbuf::with_capacity(512, GEN_HEADROOM),
        }
    }

    /// Return a processed packet's buffer for reuse.
    #[inline]
    pub fn recycle(&mut self, m: Mbuf) {
        if self.pool.len() < 4096 {
            self.pool.push(m);
        }
    }

    /// Generate the next packet of the mix, stamping `now_ns` into the
    /// payload for end-to-end latency measurement (see
    /// [`read_timestamp`]).
    #[inline]
    pub fn next_packet(&mut self, now_ns: u64) -> Mbuf {
        let pos = self.mix_pos;
        self.mix_pos = (self.mix_pos + 1) % (self.ul + self.dl);
        self.generated += 1;
        let user = self.next_user();
        let dir = usize::from(pos >= self.ul);
        let mut m = self.buffer();
        let t = &self.templates[dir];
        m.extend(&t.bytes);
        let d = m.data_mut();
        d[t.user_off..t.user_off + 4].copy_from_slice(&user.ue_ip.to_be_bytes());
        if t.teid_off != usize::MAX {
            d[t.teid_off..t.teid_off + 4].copy_from_slice(&user.teid.to_be_bytes());
        }
        // One's-complement-add the user IP into the zero-user-field base
        // checksum (RFC 1624); identical to recomputing from scratch.
        let mut s = u32::from(!t.csum_base) + (user.ue_ip >> 16) + (user.ue_ip & 0xFFFF);
        s = (s & 0xFFFF) + (s >> 16);
        s = (s & 0xFFFF) + (s >> 16);
        d[t.csum_off..t.csum_off + 2].copy_from_slice(&(!(s as u16)).to_be_bytes());
        d[t.ts_off..t.ts_off + 8].copy_from_slice(&now_ns.to_be_bytes());
        m
    }

    /// Emit-path uplink builder (template construction and tests; the
    /// hot path uses the patched template instead).
    fn emit_uplink(&mut self, user: UserKeys, now_ns: u64) -> Mbuf {
        let mut m = self.buffer();
        let payload_len = self.uplink_payload;
        let mut hdr = [0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
        Ipv4Hdr::new(user.ue_ip, 0x0808_0808, IpProto::Udp, UDP_HDR_LEN + payload_len)
            .emit(&mut hdr[..IPV4_HDR_LEN])
            .expect("fits");
        UdpHdr::new(40_000, 80, payload_len).emit(&mut hdr[IPV4_HDR_LEN..]).expect("fits");
        m.extend(&hdr);
        let mut payload = [0u8; 128];
        payload[..8].copy_from_slice(&now_ns.to_be_bytes());
        m.extend(&payload[..payload_len]);
        encap_gtpu(&mut m, self.enb_ip, self.gw_ip, user.teid).expect("headroom");
        m
    }

    /// Emit-path downlink builder (template construction and tests).
    fn emit_downlink(&mut self, user: UserKeys, now_ns: u64) -> Mbuf {
        let mut m = self.buffer();
        let payload_len = self.downlink_payload;
        let mut hdr = [0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
        Ipv4Hdr::new(0x0808_0808, user.ue_ip, IpProto::Udp, UDP_HDR_LEN + payload_len)
            .emit(&mut hdr[..IPV4_HDR_LEN])
            .expect("fits");
        UdpHdr::new(80, 40_000, payload_len).emit(&mut hdr[IPV4_HDR_LEN..]).expect("fits");
        m.extend(&hdr);
        let mut payload = [0u8; 64];
        payload[..8].copy_from_slice(&now_ns.to_be_bytes());
        m.extend(&payload[..payload_len]);
        m
    }
}

/// Read the generation timestamp back out of a packet that has been
/// through a pipeline. Works for decapsulated uplink output (plain inner
/// IP) and encapsulated downlink output (outer stack + inner IP) by
/// scanning to the innermost IP payload.
pub fn read_timestamp(m: &Mbuf) -> Option<u64> {
    let mut d = m.data();
    // Strip any GTP-U outer stacks.
    while d.len() >= 36 && d[0] == 0x45 && d[9] == 17 && u16::from_be_bytes([d[22], d[23]]) == pepc_net::GTPU_PORT {
        d = &d[IPV4_HDR_LEN + UDP_HDR_LEN + pepc_net::GTPU_HDR_LEN..];
    }
    if d.len() < IPV4_HDR_LEN + UDP_HDR_LEN + 8 || d[0] != 0x45 {
        return None;
    }
    let p = &d[IPV4_HDR_LEN + UDP_HDR_LEN..];
    Some(u64::from_be_bytes([p[0], p[1], p[2], p[3], p[4], p[5], p[6], p[7]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pepc_net::gtp::decap_gtpu;

    fn users(n: u32) -> Vec<UserKeys> {
        (0..n).map(|i| UserKeys { teid: 0x1000 + i, ue_ip: 0x0A00_0001 + i }).collect()
    }

    #[test]
    fn mix_matches_table2() {
        let mut g = TrafficGen::new(users(10));
        let mut ul = 0;
        let mut dl = 0;
        for _ in 0..4000 {
            let m = g.next_packet(0);
            let d = m.data();
            if u16::from_be_bytes([d[22], d[23]]) == pepc_net::GTPU_PORT {
                ul += 1;
                assert_eq!(m.len(), Defaults::UPLINK_PACKET_BYTES);
            } else {
                dl += 1;
                assert_eq!(m.len(), Defaults::DOWNLINK_PACKET_BYTES);
            }
        }
        assert_eq!(ul, 1000);
        assert_eq!(dl, 3000);
    }

    #[test]
    fn uplink_carries_users_tunnel() {
        let mut g = TrafficGen::new(vec![UserKeys { teid: 0xABCD, ue_ip: 0x0A000001 }]);
        // First packet of the mix is uplink.
        let mut m = g.next_packet(0);
        let (gtp, outer) = decap_gtpu(&mut m).unwrap();
        assert_eq!(gtp.teid, 0xABCD);
        assert_eq!(outer.dst, Defaults::GW_IP);
        let inner = Ipv4Hdr::parse(m.data()).unwrap();
        assert_eq!(inner.src, 0x0A000001);
    }

    #[test]
    fn downlink_targets_ue_ip() {
        let mut g = TrafficGen::new(vec![UserKeys { teid: 1, ue_ip: 0x0A000042 }]);
        g.next_packet(0); // skip uplink slot
        let m = g.next_packet(0);
        let ip = Ipv4Hdr::parse(m.data()).unwrap();
        assert_eq!(ip.dst, 0x0A000042);
    }

    #[test]
    fn selection_is_roughly_uniform() {
        let mut g = TrafficGen::new(users(16));
        let mut counts = [0u32; 16];
        for _ in 0..16_000 {
            let m = g.next_packet(0);
            let d = m.data();
            let key = if u16::from_be_bytes([d[22], d[23]]) == pepc_net::GTPU_PORT {
                u32::from_be_bytes([d[32], d[33], d[34], d[35]]) - 0x1000
            } else {
                u32::from_be_bytes([d[16], d[17], d[18], d[19]]) - 0x0A000001
            };
            counts[key as usize] += 1;
            g.recycle(m);
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((600..1500).contains(&c), "user {i} got {c}/16000");
        }
    }

    #[test]
    fn timestamps_survive_generation_and_recycling() {
        let mut g = TrafficGen::new(users(2));
        let m = g.next_packet(0xDEAD_BEEF_0000_0001);
        assert_eq!(read_timestamp(&m), Some(0xDEAD_BEEF_0000_0001));
        g.recycle(m);
        let m = g.next_packet(42);
        assert_eq!(read_timestamp(&m), Some(42));
    }

    #[test]
    fn recycling_reuses_buffers() {
        let mut g = TrafficGen::new(users(1));
        let m1 = g.next_packet(0);
        g.recycle(m1);
        let before = g.pool.len();
        let _m2 = g.next_packet(0);
        assert_eq!(g.pool.len(), before - 1, "drew from the pool");
    }

    #[test]
    fn read_timestamp_rejects_garbage() {
        assert_eq!(read_timestamp(&Mbuf::from_payload(&[0u8; 10])), None);
        assert_eq!(read_timestamp(&Mbuf::new()), None);
    }
}
