//! Signaling event streams — the paper's second experiment category
//! (§5.1): synthetic control updates "corresponding to attach requests
//! and S1-based handovers [...] uniformly distributed across the number
//! of user devices", at a configurable rate.

/// One signaling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigEvent {
    Attach { imsi: u64 },
    S1Handover { imsi: u64, new_enb_teid: u32, new_enb_ip: u32 },
}

/// What mix of events to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventMix {
    /// Fraction of events that are attaches (rest are S1 handovers).
    pub attach_fraction: f64,
}

impl EventMix {
    pub fn attaches_only() -> Self {
        EventMix { attach_fraction: 1.0 }
    }

    pub fn handovers_only() -> Self {
        EventMix { attach_fraction: 0.0 }
    }
}

/// Deterministic event stream: `rate` events per second, uniform over
/// `[imsi_base, imsi_base + users)`.
pub struct SignalingGen {
    imsi_base: u64,
    users: u64,
    rate_per_sec: u64,
    mix: EventMix,
    issued: u64,
    lcg: u64,
    /// Rotates eNodeB endpoints for handover events.
    enb_counter: u32,
}

impl SignalingGen {
    pub fn new(imsi_base: u64, users: u64, rate_per_sec: u64, mix: EventMix) -> Self {
        assert!(users > 0);
        SignalingGen { imsi_base, users, rate_per_sec, mix, issued: 0, lcg: 0x2545_F491_4F6C_DD1D, enb_counter: 0 }
    }

    /// Events per second this stream targets.
    pub fn rate(&self) -> u64 {
        self.rate_per_sec
    }

    /// Total events issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// How many events are due by `elapsed_ns` that have not yet been
    /// issued. Call [`SignalingGen::next_event`] that many times.
    pub fn due(&self, elapsed_ns: u64) -> u64 {
        let target = (elapsed_ns as u128 * self.rate_per_sec as u128 / 1_000_000_000) as u64;
        target.saturating_sub(self.issued)
    }

    /// Produce the next event.
    pub fn next_event(&mut self) -> SigEvent {
        self.issued += 1;
        self.lcg = self.lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let imsi = self.imsi_base + (self.lcg >> 33) % self.users;
        let attach = if self.mix.attach_fraction >= 1.0 {
            true
        } else if self.mix.attach_fraction <= 0.0 {
            false
        } else {
            // Low bits of the LCG pick the event type.
            (self.lcg & 0xFFFF) as f64 / 65536.0 < self.mix.attach_fraction
        };
        if attach {
            SigEvent::Attach { imsi }
        } else {
            self.enb_counter = self.enb_counter.wrapping_add(1);
            SigEvent::S1Handover {
                imsi,
                new_enb_teid: 0xE000_0000 + (self.enb_counter & 0xFFFF),
                new_enb_ip: 0xC0A8_0001 + (self.enb_counter % 64),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_follows_rate() {
        let g = SignalingGen::new(0, 100, 10_000, EventMix::attaches_only());
        assert_eq!(g.due(0), 0);
        assert_eq!(g.due(1_000_000), 10); // 1 ms at 10K/s
        assert_eq!(g.due(1_000_000_000), 10_000);
    }

    #[test]
    fn issuing_reduces_due() {
        let mut g = SignalingGen::new(0, 100, 1000, EventMix::attaches_only());
        assert_eq!(g.due(10_000_000), 10);
        for _ in 0..10 {
            g.next_event();
        }
        assert_eq!(g.due(10_000_000), 0);
        assert_eq!(g.issued(), 10);
    }

    #[test]
    fn events_cover_population_uniformly() {
        let mut g = SignalingGen::new(1000, 10, 1, EventMix::attaches_only());
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            match g.next_event() {
                SigEvent::Attach { imsi } => counts[(imsi - 1000) as usize] += 1,
                _ => unreachable!(),
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "imsi offset {i}: {c}");
        }
    }

    #[test]
    fn mix_controls_event_types() {
        let mut g = SignalingGen::new(0, 100, 1, EventMix { attach_fraction: 0.5 });
        let mut attaches = 0;
        let mut handovers = 0;
        for _ in 0..10_000 {
            match g.next_event() {
                SigEvent::Attach { .. } => attaches += 1,
                SigEvent::S1Handover { .. } => handovers += 1,
            }
        }
        assert!((4000..6000).contains(&attaches), "{attaches}");
        assert!((4000..6000).contains(&handovers), "{handovers}");
    }

    #[test]
    fn handover_endpoints_rotate() {
        let mut g = SignalingGen::new(0, 10, 1, EventMix::handovers_only());
        let e1 = g.next_event();
        let e2 = g.next_event();
        match (e1, e2) {
            (SigEvent::S1Handover { new_enb_teid: t1, .. }, SigEvent::S1Handover { new_enb_teid: t2, .. }) => {
                assert_ne!(t1, t2)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_rate_never_due() {
        let g = SignalingGen::new(0, 10, 0, EventMix::attaches_only());
        assert_eq!(g.due(u64::MAX / 2), 0);
    }
}
