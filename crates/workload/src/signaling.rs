//! Signaling event streams — the paper's second experiment category
//! (§5.1): synthetic control updates "corresponding to attach requests
//! and S1-based handovers [...] uniformly distributed across the number
//! of user devices", at a configurable rate.

/// One signaling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigEvent {
    Attach { imsi: u64 },
    S1Handover { imsi: u64, new_enb_teid: u32, new_enb_ip: u32 },
}

/// What mix of events to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventMix {
    /// Fraction of events that are attaches (rest are S1 handovers).
    pub attach_fraction: f64,
}

impl EventMix {
    pub fn attaches_only() -> Self {
        EventMix { attach_fraction: 1.0 }
    }

    pub fn handovers_only() -> Self {
        EventMix { attach_fraction: 0.0 }
    }
}

/// Deterministic event stream: `rate` events per second, uniform over
/// `[imsi_base, imsi_base + users)`.
pub struct SignalingGen {
    imsi_base: u64,
    users: u64,
    rate_per_sec: u64,
    mix: EventMix,
    issued: u64,
    lcg: u64,
    /// Rotates eNodeB endpoints for handover events.
    enb_counter: u32,
}

impl SignalingGen {
    pub fn new(imsi_base: u64, users: u64, rate_per_sec: u64, mix: EventMix) -> Self {
        assert!(users > 0);
        SignalingGen { imsi_base, users, rate_per_sec, mix, issued: 0, lcg: 0x2545_F491_4F6C_DD1D, enb_counter: 0 }
    }

    /// Events per second this stream targets.
    pub fn rate(&self) -> u64 {
        self.rate_per_sec
    }

    /// Total events issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// How many events are due by `elapsed_ns` that have not yet been
    /// issued. Call [`SignalingGen::next_event`] that many times.
    pub fn due(&self, elapsed_ns: u64) -> u64 {
        let target = (elapsed_ns as u128 * self.rate_per_sec as u128 / 1_000_000_000) as u64;
        target.saturating_sub(self.issued)
    }

    /// Produce the next event.
    pub fn next_event(&mut self) -> SigEvent {
        self.issued += 1;
        self.lcg = self.lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let imsi = self.imsi_base + (self.lcg >> 33) % self.users;
        let attach = if self.mix.attach_fraction >= 1.0 {
            true
        } else if self.mix.attach_fraction <= 0.0 {
            false
        } else {
            // Low bits of the LCG pick the event type.
            (self.lcg & 0xFFFF) as f64 / 65536.0 < self.mix.attach_fraction
        };
        if attach {
            SigEvent::Attach { imsi }
        } else {
            self.enb_counter = self.enb_counter.wrapping_add(1);
            SigEvent::S1Handover {
                imsi,
                new_enb_teid: 0xE000_0000 + (self.enb_counter & 0xFFFF),
                new_enb_ip: 0xC0A8_0001 + (self.enb_counter % 64),
            }
        }
    }
}

// -- overlapping-procedure streams (PR 6) -----------------------------------

/// One abstract step of a UE signaling procedure script. Steps are
/// templates: the driver that replays them fills in transport
/// identifiers (eNB UE id, MME UE id, GUTI) from the responses it has
/// observed so far, so a step stays replayable even when an overlapping
/// procedure preempted the one it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcStep {
    /// Initial UE message carrying a NAS Attach Request.
    AttachStart,
    /// NAS Authentication Response (RES computed from the last challenge).
    AuthResponse,
    /// NAS Security Mode Complete.
    SecurityModeComplete,
    /// Initial Context Setup Response from the eNodeB.
    IcsResponse,
    /// NAS Attach Complete.
    AttachComplete,
    /// S1 Handover Required from the source eNodeB.
    HoRequired,
    /// S1 Handover Request Ack from the target eNodeB.
    HoAck,
    /// NAS Detach Request (GUTI-addressed).
    Detach,
    /// Bearer modification control event (AMBR change).
    BearerModify,
    /// eNodeB UE Context Release Request (active→idle; S1 release).
    ReleaseRequest,
    /// Network-triggered page (downlink arrived for the idle UE).
    PageTrigger,
    /// NAS Service Request (GUTI-addressed; idle→active, answers a page).
    ServiceRequest,
}

/// The five procedure scripts the interleaving matrix shuffles. A
/// duplicate attach is the same script replayed on the same S1
/// association, so it shares [`attach_script`].
pub fn attach_script() -> Vec<ProcStep> {
    vec![
        ProcStep::AttachStart,
        ProcStep::AuthResponse,
        ProcStep::SecurityModeComplete,
        ProcStep::IcsResponse,
        ProcStep::AttachComplete,
    ]
}

pub fn handover_script() -> Vec<ProcStep> {
    vec![ProcStep::HoRequired, ProcStep::HoAck]
}

pub fn detach_script() -> Vec<ProcStep> {
    vec![ProcStep::Detach]
}

pub fn bearer_script() -> Vec<ProcStep> {
    vec![ProcStep::BearerModify]
}

/// The paging race: the UE is released to idle, downlink triggers a
/// page, and the UE answers with a Service Request. Shuffled against
/// attach/detach streams this exercises every page-vs-signaling race.
pub fn page_race_script() -> Vec<ProcStep> {
    vec![ProcStep::ReleaseRequest, ProcStep::PageTrigger, ProcStep::ServiceRequest]
}

/// Seeded shuffle of several procedure scripts into one message stream.
///
/// Each call to [`OverlapGen::next_step`] picks one still-nonempty
/// stream uniformly (seeded LCG) and pops its next step, so intra-stream
/// order is always preserved while streams overlap arbitrarily — the
/// generator form of the exhaustive pairwise enumeration in
/// `tests/procedure_interleavings.rs`, usable at K > 2 streams where
/// enumeration would explode.
pub struct OverlapGen {
    lcg: u64,
    streams: Vec<(u32, std::collections::VecDeque<ProcStep>)>,
}

impl OverlapGen {
    pub fn new(seed: u64, scripts: Vec<(u32, Vec<ProcStep>)>) -> Self {
        OverlapGen {
            // Avoid the all-zero LCG fixed point.
            lcg: seed ^ 0x9E37_79B9_7F4A_7C15,
            streams: scripts.into_iter().map(|(tag, s)| (tag, s.into())).collect(),
        }
    }

    /// Steps not yet emitted.
    pub fn remaining(&self) -> usize {
        self.streams.iter().map(|(_, s)| s.len()).sum()
    }

    /// Emit the next `(stream_tag, step)`, or `None` when all streams
    /// are drained.
    pub fn next_step(&mut self) -> Option<(u32, ProcStep)> {
        let live: Vec<usize> =
            self.streams.iter().enumerate().filter(|(_, (_, s))| !s.is_empty()).map(|(i, _)| i).collect();
        if live.is_empty() {
            return None;
        }
        self.lcg = self.lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let pick = live[((self.lcg >> 33) as usize) % live.len()];
        let (tag, stream) = &mut self.streams[pick];
        Some((*tag, stream.pop_front().expect("picked non-empty")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_follows_rate() {
        let g = SignalingGen::new(0, 100, 10_000, EventMix::attaches_only());
        assert_eq!(g.due(0), 0);
        assert_eq!(g.due(1_000_000), 10); // 1 ms at 10K/s
        assert_eq!(g.due(1_000_000_000), 10_000);
    }

    #[test]
    fn issuing_reduces_due() {
        let mut g = SignalingGen::new(0, 100, 1000, EventMix::attaches_only());
        assert_eq!(g.due(10_000_000), 10);
        for _ in 0..10 {
            g.next_event();
        }
        assert_eq!(g.due(10_000_000), 0);
        assert_eq!(g.issued(), 10);
    }

    #[test]
    fn events_cover_population_uniformly() {
        let mut g = SignalingGen::new(1000, 10, 1, EventMix::attaches_only());
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            match g.next_event() {
                SigEvent::Attach { imsi } => counts[(imsi - 1000) as usize] += 1,
                _ => unreachable!(),
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "imsi offset {i}: {c}");
        }
    }

    #[test]
    fn mix_controls_event_types() {
        let mut g = SignalingGen::new(0, 100, 1, EventMix { attach_fraction: 0.5 });
        let mut attaches = 0;
        let mut handovers = 0;
        for _ in 0..10_000 {
            match g.next_event() {
                SigEvent::Attach { .. } => attaches += 1,
                SigEvent::S1Handover { .. } => handovers += 1,
            }
        }
        assert!((4000..6000).contains(&attaches), "{attaches}");
        assert!((4000..6000).contains(&handovers), "{handovers}");
    }

    #[test]
    fn handover_endpoints_rotate() {
        let mut g = SignalingGen::new(0, 10, 1, EventMix::handovers_only());
        let e1 = g.next_event();
        let e2 = g.next_event();
        match (e1, e2) {
            (SigEvent::S1Handover { new_enb_teid: t1, .. }, SigEvent::S1Handover { new_enb_teid: t2, .. }) => {
                assert_ne!(t1, t2)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_rate_never_due() {
        let g = SignalingGen::new(0, 10, 0, EventMix::attaches_only());
        assert_eq!(g.due(u64::MAX / 2), 0);
    }

    fn collect(mut g: OverlapGen) -> Vec<(u32, ProcStep)> {
        let mut out = Vec::new();
        while let Some(s) = g.next_step() {
            out.push(s);
        }
        out
    }

    #[test]
    fn overlap_emits_every_step_exactly_once() {
        let g = OverlapGen::new(7, vec![(1, attach_script()), (2, handover_script()), (3, detach_script())]);
        assert_eq!(g.remaining(), 8);
        let steps = collect(g);
        assert_eq!(steps.len(), 8);
        assert_eq!(steps.iter().filter(|(t, _)| *t == 1).count(), 5);
        assert_eq!(steps.iter().filter(|(t, _)| *t == 2).count(), 2);
        assert_eq!(steps.iter().filter(|(t, _)| *t == 3).count(), 1);
    }

    #[test]
    fn overlap_preserves_intra_stream_order() {
        for seed in 0..50 {
            let steps = collect(OverlapGen::new(seed, vec![(1, attach_script()), (2, attach_script())]));
            for tag in [1u32, 2] {
                let order: Vec<ProcStep> = steps.iter().filter(|(t, _)| *t == tag).map(|&(_, s)| s).collect();
                assert_eq!(order, attach_script(), "seed {seed} tag {tag}");
            }
        }
    }

    #[test]
    fn overlap_same_seed_is_deterministic_and_seeds_differ() {
        let mk = |seed| collect(OverlapGen::new(seed, vec![(1, attach_script()), (2, handover_script())]));
        assert_eq!(mk(42), mk(42));
        let distinct: std::collections::HashSet<Vec<(u32, ProcStep)>> = (0..20).map(mk).collect();
        assert!(distinct.len() > 1, "seeds must explore different interleavings");
    }
}
