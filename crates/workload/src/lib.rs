// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! # pepc-workload — workload generation and the measurement harness
//!
//! The paper's testbed drove PEPC with OpenAirInterface-derived GTP-U
//! traces and an ng4T RAN emulator; this crate is the synthetic
//! equivalent (DESIGN.md §2): packet generators reproducing the Table 2
//! workload parameters, signaling event streams, device populations with
//! IoT shares / always-on fractions / churn, and the measurement loop all
//! figure harnesses share.
//!
//! * [`params`] — Table 2 defaults (UL:DL 1:3, 64 B downlink, 128 B
//!   uplink, attach events, 100 K events/s, 1 M users).
//! * [`traffic`] — GTP-U uplink / plain-IP downlink generator with
//!   buffer recycling and per-packet latency stamps.
//! * [`signaling`] — attach / S1-handover event streams at a target rate,
//!   uniform across the user population (§5.1).
//! * [`population`] — device mixes for Figures 14 and 15.
//! * [`storm`] — signaling-storm shapes (synchronized wake-up waves,
//!   exponential-backoff herds, storm-over-steady mixes) for the
//!   overload/admission experiments (DESIGN.md §15).
//! * [`harness`] — [`harness::SystemUnderTest`] adapters for PEPC and the
//!   classic baseline plus the shared throughput/latency measurement loop.

pub mod harness;
pub mod params;
pub mod population;
pub mod signaling;
pub mod storm;
pub mod traffic;

pub use harness::{ClassicSut, HaSut, Measurement, PepcSut, SystemUnderTest};
pub use params::Defaults;
pub use population::Population;
pub use signaling::{SigEvent, SignalingGen};
pub use storm::{BackoffHerd, HerdOutcome, MixEvent, StormMix, WakeupWave};
pub use traffic::TrafficGen;
