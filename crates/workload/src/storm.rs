//! Signaling-storm generators (ROADMAP item 3, DESIGN.md §15).
//!
//! "Characterizing Delay and Control Traffic of the Cellular MME with
//! IoT Support" (PAPERS.md) describes the regime these model: millions
//! of narrowband devices whose firmware wakes them on the same schedule,
//! so the MME sees *waves* of near-simultaneous attach attempts instead
//! of the uniform arrivals [`SignalingGen`](crate::SignalingGen)
//! produces. Three generator shapes:
//!
//! * [`WakeupWave`] — open-loop synchronized wake-up: every device fires
//!   once per period inside a small jitter window.
//! * [`BackoffHerd`] — closed-loop exponential backoff: the driver feeds
//!   rejects back in, and because all devices share the same backoff
//!   schedule the herd *re-collides* at each retry horizon — the classic
//!   storm that defeats naive rate limiting.
//! * [`StormMix`] — a storm wave overlaid on steady-state signaling, for
//!   measuring what the storm does to well-behaved traffic (the
//!   degradation-curve bench).
//!
//! All three are seeded and deterministic: same construction, same calls,
//! same event sequence — the property every consumer (bench, sim, CI)
//! relies on.

use crate::signaling::{SigEvent, SignalingGen};
use std::collections::VecDeque;

fn lcg_next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

/// Open-loop synchronized wake-up wave: `devices` UEs each attempt one
/// attach per `period_ns`, all landing within `spread_ns` of the wave
/// start (spread 0 = perfectly synchronized).
///
/// Pull events with [`WakeupWave::pop_due`]; each is `(at_ns, imsi)` in
/// nondecreasing `at_ns` order.
pub struct WakeupWave {
    imsi_base: u64,
    devices: u64,
    period_ns: u64,
    spread_ns: u64,
    lcg: u64,
    /// Next wave index to schedule.
    wave: u64,
    /// Events of already-scheduled waves, sorted by (at_ns, imsi).
    pending: VecDeque<(u64, u64)>,
    issued: u64,
}

impl WakeupWave {
    pub fn new(seed: u64, imsi_base: u64, devices: u64, period_ns: u64, spread_ns: u64) -> Self {
        assert!(devices > 0 && period_ns > 0);
        WakeupWave {
            imsi_base,
            devices,
            period_ns,
            spread_ns,
            lcg: seed ^ 0x5707_4A11_57A7_1C5E,
            wave: 0,
            pending: VecDeque::new(),
            issued: 0,
        }
    }

    /// Events handed out so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    fn schedule_wave(&mut self) {
        let start = self.wave * self.period_ns;
        let mut events: Vec<(u64, u64)> = (0..self.devices)
            .map(|d| {
                let jitter = if self.spread_ns == 0 { 0 } else { lcg_next(&mut self.lcg) % self.spread_ns };
                (start + jitter, self.imsi_base + d)
            })
            .collect();
        events.sort_unstable();
        self.pending.extend(events);
        self.wave += 1;
    }

    /// Next `(at_ns, imsi)` due at or before `now_ns`, or `None` when the
    /// wave front has not reached `now_ns` yet.
    pub fn pop_due(&mut self, now_ns: u64) -> Option<(u64, u64)> {
        while self.pending.is_empty() && self.wave * self.period_ns <= now_ns {
            self.schedule_wave();
        }
        match self.pending.front() {
            Some(&(at, _)) if at <= now_ns => {
                self.issued += 1;
                self.pending.pop_front()
            }
            _ => None,
        }
    }
}

/// What the driver observed for one herd attempt, fed back via
/// [`BackoffHerd::on_result`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HerdOutcome {
    /// Attach finished; the device leaves the herd.
    Accepted,
    /// Shed/rejected with an explicit backoff hint (the
    /// `CongestionReject.backoff_ms`, in ns here). The device retries
    /// after `max(hint, base·2^attempts)`.
    Rejected { backoff_hint_ns: u64 },
    /// No answer (procedure expired); retry on the device's own
    /// exponential schedule.
    Timeout,
}

/// Closed-loop exponential-backoff herd. All devices make their first
/// attempt at `start_ns` (+ jitter); every rejected/timed-out device
/// computes the *same* backoff for the same attempt count, so the herd
/// re-collides at each retry horizon until something (admission control
/// shedding with real backoff, or acceptance) breaks the synchrony.
pub struct BackoffHerd {
    base_backoff_ns: u64,
    /// Exponent cap: backoff stops doubling at `base·2^max_exponent`.
    max_exponent: u32,
    jitter_ns: u64,
    lcg: u64,
    /// Retry schedule, kept sorted by (at_ns, imsi).
    pending: VecDeque<(u64, u64)>,
    /// Per-device attempt counts (imsi → attempts so far).
    attempts: std::collections::HashMap<u64, u32>,
    devices: u64,
    issued: u64,
    done: u64,
}

impl BackoffHerd {
    pub fn new(seed: u64, imsi_base: u64, devices: u64, start_ns: u64, base_backoff_ns: u64, jitter_ns: u64) -> Self {
        assert!(devices > 0 && base_backoff_ns > 0);
        let mut lcg = seed ^ 0xBAC0_FF5E_ED15_EA5E;
        let mut first: Vec<(u64, u64)> = (0..devices)
            .map(|d| {
                let j = if jitter_ns == 0 { 0 } else { lcg_next(&mut lcg) % jitter_ns };
                (start_ns + j, imsi_base + d)
            })
            .collect();
        first.sort_unstable();
        BackoffHerd {
            base_backoff_ns,
            max_exponent: 10,
            jitter_ns,
            lcg,
            pending: first.into(),
            attempts: std::collections::HashMap::new(),
            devices,
            issued: 0,
            done: 0,
        }
    }

    /// Devices still herding (not yet accepted).
    pub fn outstanding(&self) -> u64 {
        self.devices - self.done
    }

    /// Total attempts handed out so far (retries included).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Next `(at_ns, imsi)` attempt due at or before `now_ns`.
    pub fn pop_due(&mut self, now_ns: u64) -> Option<(u64, u64)> {
        match self.pending.front() {
            Some(&(at, _)) if at <= now_ns => {
                self.issued += 1;
                self.pending.pop_front()
            }
            _ => None,
        }
    }

    /// Feed back the driver's observation for `imsi`'s latest attempt.
    /// Rejections/timeouts reschedule the device; acceptance retires it.
    pub fn on_result(&mut self, imsi: u64, now_ns: u64, outcome: HerdOutcome) {
        match outcome {
            HerdOutcome::Accepted => {
                self.attempts.remove(&imsi);
                self.done += 1;
            }
            HerdOutcome::Rejected { .. } | HerdOutcome::Timeout => {
                let hint = match outcome {
                    HerdOutcome::Rejected { backoff_hint_ns } => backoff_hint_ns,
                    _ => 0,
                };
                let n = self.attempts.entry(imsi).or_insert(0);
                let exp = (*n).min(self.max_exponent);
                *n += 1;
                let own = self.base_backoff_ns << exp;
                let j = if self.jitter_ns == 0 { 0 } else { lcg_next(&mut self.lcg) % self.jitter_ns };
                let at = now_ns + own.max(hint) + j;
                // Insert keeping (at, imsi) order: retries land at the
                // back in practice (monotone now_ns), but a binary search
                // keeps the schedule exact regardless of call order.
                let pos = self.pending.partition_point(|&e| e <= (at, imsi));
                self.pending.insert(pos, (at, imsi));
            }
        }
    }
}

/// One event out of [`StormMix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixEvent {
    /// Well-behaved steady-state signaling (the traffic whose goodput the
    /// degradation curve tracks).
    Steady(SigEvent),
    /// A storm-wave attach attempt.
    Storm { at_ns: u64, imsi: u64 },
}

/// Storm-over-steady-state composition: a [`WakeupWave`] overlaid on a
/// [`SignalingGen`]. Storm events drain first at each poll (the wave
/// front is bursty by construction); steady events fill in at their
/// configured rate. Both halves are deterministic, so so is the merge.
pub struct StormMix {
    steady: SignalingGen,
    wave: WakeupWave,
}

impl StormMix {
    pub fn new(steady: SignalingGen, wave: WakeupWave) -> Self {
        StormMix { steady, wave }
    }

    /// Next event due at or before `now_ns`, storm first.
    pub fn pop_due(&mut self, now_ns: u64) -> Option<MixEvent> {
        if let Some((at_ns, imsi)) = self.wave.pop_due(now_ns) {
            return Some(MixEvent::Storm { at_ns, imsi });
        }
        if self.steady.due(now_ns) > 0 {
            return Some(MixEvent::Steady(self.steady.next_event()));
        }
        None
    }

    pub fn storm_issued(&self) -> u64 {
        self.wave.issued()
    }

    pub fn steady_issued(&self) -> u64 {
        self.steady.issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signaling::EventMix;

    #[test]
    fn wave_fires_all_devices_inside_the_spread_window() {
        let mut w = WakeupWave::new(7, 1000, 50, 1_000_000_000, 10_000_000);
        let mut seen = Vec::new();
        while let Some((at, imsi)) = w.pop_due(500_000_000) {
            assert!(at < 10_000_000, "event at {at} outside wave-0 spread");
            seen.push(imsi);
        }
        assert_eq!(seen.len(), 50, "every device wakes exactly once per wave");
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
        // Nothing more until the next period.
        assert_eq!(w.pop_due(999_999_999), None);
        assert!(w.pop_due(1_010_000_000).is_some(), "wave 1 lands within period + spread");
    }

    #[test]
    fn wave_zero_spread_is_perfectly_synchronized() {
        let mut w = WakeupWave::new(1, 0, 10, 1_000, 0);
        for _ in 0..10 {
            let (at, _) = w.pop_due(0).expect("due at t=0");
            assert_eq!(at, 0);
        }
        assert_eq!(w.pop_due(999), None);
    }

    #[test]
    fn wave_same_seed_same_schedule() {
        let collect = |seed| {
            let mut w = WakeupWave::new(seed, 0, 20, 1_000_000, 1000);
            let mut v = Vec::new();
            while let Some(e) = w.pop_due(3_000_000) {
                v.push(e);
            }
            v
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43), "different seeds explore different jitter");
    }

    #[test]
    fn herd_recollides_after_synchronized_rejects() {
        let mut h = BackoffHerd::new(9, 0, 8, 0, 1_000_000, 0);
        // First volley: everyone due at t=0.
        let mut volley = Vec::new();
        while let Some((_, imsi)) = h.pop_due(0) {
            volley.push(imsi);
        }
        assert_eq!(volley.len(), 8);
        // Reject them all at t=0: with zero jitter every retry lands at
        // exactly base backoff — the herd re-collides.
        for imsi in &volley {
            h.on_result(*imsi, 0, HerdOutcome::Rejected { backoff_hint_ns: 0 });
        }
        assert_eq!(h.pop_due(999_999), None, "nothing due before the backoff horizon");
        let mut second = 0;
        while h.pop_due(1_000_000).is_some() {
            second += 1;
        }
        assert_eq!(second, 8, "entire herd re-collides at t=base");
        // Second reject doubles the horizon (exponential backoff).
        for imsi in &volley {
            h.on_result(*imsi, 1_000_000, HerdOutcome::Rejected { backoff_hint_ns: 0 });
        }
        assert_eq!(h.pop_due(2_999_999), None);
        assert!(h.pop_due(3_000_000).is_some(), "retry 2 at now + 2x base");
    }

    #[test]
    fn herd_honors_server_backoff_hint() {
        let mut h = BackoffHerd::new(3, 0, 1, 0, 1_000, 0);
        let (_, imsi) = h.pop_due(0).unwrap();
        // Server hands a hint far above the device's own schedule.
        h.on_result(imsi, 0, HerdOutcome::Rejected { backoff_hint_ns: 50_000 });
        assert_eq!(h.pop_due(49_999), None, "server backoff respected");
        assert!(h.pop_due(50_000).is_some());
    }

    #[test]
    fn herd_accepted_devices_retire() {
        let mut h = BackoffHerd::new(3, 0, 4, 0, 1_000, 0);
        let mut first = Vec::new();
        while let Some((_, imsi)) = h.pop_due(0) {
            first.push(imsi);
        }
        h.on_result(first[0], 0, HerdOutcome::Accepted);
        h.on_result(first[1], 0, HerdOutcome::Accepted);
        h.on_result(first[2], 0, HerdOutcome::Timeout);
        h.on_result(first[3], 0, HerdOutcome::Rejected { backoff_hint_ns: 0 });
        assert_eq!(h.outstanding(), 2, "two retired, two retrying");
        let mut retries = 0;
        while h.pop_due(u64::MAX / 2).is_some() {
            retries += 1;
        }
        assert_eq!(retries, 2);
    }

    #[test]
    fn mix_interleaves_storm_over_steady() {
        let steady = SignalingGen::new(0, 100, 1_000, EventMix::attaches_only());
        let wave = WakeupWave::new(5, 10_000, 30, 1_000_000_000, 0);
        let mut mix = StormMix::new(steady, wave);
        let mut storm = 0;
        let mut steady_n = 0;
        // Poll at 10 ms: the whole wave (30) plus 10 steady events due.
        while let Some(e) = mix.pop_due(10_000_000) {
            match e {
                MixEvent::Storm { .. } => storm += 1,
                MixEvent::Steady(_) => steady_n += 1,
            }
        }
        assert_eq!(storm, 30);
        assert_eq!(steady_n, 10);
        assert_eq!(mix.storm_issued(), 30);
        assert_eq!(mix.steady_issued(), 10);
    }
}
