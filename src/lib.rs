//! # pepc-system — the assembled PEPC reproduction
//!
//! Facade crate tying the workspace together for the examples and the
//! cross-crate integration tests in `tests/`. The interesting code lives
//! in the member crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`pepc`] | the PEPC system itself (slices, node, migration, …) |
//! | [`pepc_net`] | packet buffers, Ethernet/IPv4/UDP/TCP/GTP codecs, BPF VM |
//! | [`pepc_fabric`] | rings, virtual ports, workers, load balancer |
//! | [`pepc_sigproto`] | SCTP-lite, S1AP, NAS, Diameter-lite, Gx-lite |
//! | [`pepc_backend`] | HSS and PCRF |
//! | [`pepc_baseline`] | the classic MME/S-GW/P-GW EPC it is compared to |
//! | [`pepc_workload`] | traffic/signaling generators and the harness |

pub use pepc;
pub use pepc_backend;
pub use pepc_baseline;
pub use pepc_fabric;
pub use pepc_net;
pub use pepc_sigproto;
pub use pepc_workload;
