//! Differential test for the procedure-machine dispatcher (PR 6).
//!
//! Replays PR-1-style seeded signaling workloads through strictly
//! *sequential* delivery — every procedure runs to completion before the
//! next message arrives, so no mailbox/preemption machinery can engage —
//! and digests the emitted PDU bytes, the final per-user `ControlState`,
//! and the (pre-existing) `CtrlMetrics` counters.
//!
//! The golden digests below were captured on the pre-refactor
//! run-to-completion implementation. The state-machine dispatcher must
//! reproduce them byte-for-byte: when procedures do not overlap, the
//! refactor is not allowed to change behavior.
//!
//! Duplicate attaches for an already-attached IMSI are deliberately not
//! replayed here: that path changes intentionally in this PR (idempotent
//! re-accept instead of reallocation) and has its own regression test.

use pepc::ctrl::{Allocator, ControlPlane};
use pepc::proxy::Proxy;
use pepc_backend::hss::sim_response;
use pepc_backend::{Hss, Pcrf};
use pepc_sigproto::nas::NasMsg;
use pepc_sigproto::s1ap::S1apPdu;
use pepc_workload::signaling::{EventMix, SigEvent, SignalingGen};
use std::collections::HashMap;
use std::sync::Arc;

const USERS: u64 = 8;
const EVENTS: usize = 60;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn cp_with_backends() -> ControlPlane {
    let hss = Arc::new(Hss::new());
    hss.provision_range(1, USERS, 100_000);
    let pcrf = Arc::new(Pcrf::with_standard_rules());
    let proxy = Arc::new(Proxy::new(hss, pcrf, 1, 40401));
    let alloc = Allocator { teid_base: 0x1000, ue_ip_base: 0x0A00_0001, guti_base: 0xD00D_0000, mme_ue_id_base: 1 };
    ControlPlane::new(0x0AFE_0001, 1, alloc, Some(proxy))
}

/// Run one seeded workload sequentially and digest everything observable.
fn run_workload(seed: u64) -> u64 {
    let mut cp = cp_with_backends();
    let mut gen = SignalingGen::new(1, USERS, 1000, EventMix { attach_fraction: 0.6 });
    // The generator's LCG is fixed; the seed offsets into the stream so
    // each seed replays a distinct event subsequence.
    for _ in 0..seed {
        gen.next_event();
    }

    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    // imsi -> mme_ue_id from the most recent attach.
    let mut sessions: HashMap<u64, u32> = HashMap::new();
    let mut next_enb_ue_id = 0x500u32;

    let send = |cp: &mut ControlPlane, digest: &mut u64, pdu: &S1apPdu| -> Vec<S1apPdu> {
        let out = cp.handle_s1ap(pdu);
        for p in &out {
            *digest = fnv(*digest, &p.encode());
        }
        *digest = fnv(*digest, &(out.len() as u64).to_le_bytes());
        out
    };

    for _ in 0..EVENTS {
        match gen.next_event() {
            SigEvent::Attach { imsi } => {
                if sessions.contains_key(&imsi) {
                    // Duplicate attach: intentionally out of scope (see
                    // module docs); fold a marker so skips still count.
                    digest = fnv(digest, b"dup-skip");
                    continue;
                }
                let enb_ue_id = next_enb_ue_id;
                next_enb_ue_id += 1;
                let rsp = send(
                    &mut cp,
                    &mut digest,
                    &S1apPdu::InitialUeMessage {
                        enb_ue_id,
                        ecgi: 0x100,
                        tac: 1,
                        nas: NasMsg::AttachRequest { imsi, ue_capability: 0xF0 }.encode(),
                    },
                );
                let (mme_ue_id, rand) = match rsp.as_slice() {
                    [S1apPdu::DownlinkNasTransport { mme_ue_id, nas, .. }] => match NasMsg::decode(nas) {
                        Ok(NasMsg::AuthenticationRequest { rand, .. }) => (*mme_ue_id, rand),
                        other => panic!("expected auth request, got {other:?}"),
                    },
                    other => panic!("expected downlink NAS, got {other:?}"),
                };
                let res = sim_response(Hss::key_for(imsi), rand);
                send(
                    &mut cp,
                    &mut digest,
                    &S1apPdu::UplinkNasTransport {
                        enb_ue_id,
                        mme_ue_id,
                        nas: NasMsg::AuthenticationResponse { res }.encode(),
                    },
                );
                send(
                    &mut cp,
                    &mut digest,
                    &S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas: NasMsg::SecurityModeComplete.encode() },
                );
                send(
                    &mut cp,
                    &mut digest,
                    &S1apPdu::InitialContextSetupResponse {
                        enb_ue_id,
                        mme_ue_id,
                        enb_teid: 0xE000 + imsi as u32,
                        enb_ip: 0xC0A8_0001,
                    },
                );
                send(
                    &mut cp,
                    &mut digest,
                    &S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas: NasMsg::AttachComplete.encode() },
                );
                sessions.insert(imsi, mme_ue_id);
            }
            SigEvent::S1Handover { imsi, new_enb_teid, new_enb_ip } => {
                // Attached users path-switch; unknown sessions exercise
                // the unroutable path (mme_ue_id 0 resolves to nobody).
                let mme_ue_id = sessions.get(&imsi).copied().unwrap_or(0);
                send(
                    &mut cp,
                    &mut digest,
                    &S1apPdu::PathSwitchRequest {
                        enb_ue_id: 0x900 + imsi as u32,
                        mme_ue_id,
                        new_enb_teid,
                        new_enb_ip,
                        ecgi: 0x200,
                    },
                );
            }
        }
    }

    // Final state: every user's ControlState, in IMSI order.
    let mut imsis = cp.imsis();
    imsis.sort_unstable();
    for imsi in imsis {
        let ctx = cp.context_of(imsi).unwrap();
        let json = serde_json::to_string(&ctx.ctrl_read().clone()).unwrap();
        digest = fnv(digest, json.as_bytes());
    }
    // Pre-existing counters only: the refactor adds new per-procedure
    // counters, which must not perturb these.
    let m = cp.metrics();
    // The idle/paging subsystem (PR 10) must be completely inert in a
    // replay that never releases a UE: any nonzero here means paging
    // machinery leaked into the attach/handover paths.
    assert_eq!(m.paged, 0, "seed replay must not page");
    assert_eq!(m.paging_resolved, 0);
    assert_eq!(m.paging_expired, 0);
    assert_eq!(m.paging_retx, 0);
    assert_eq!(cp.paging_in_flight(), 0);
    assert_eq!(cp.idle_user_count(), 0, "no UE may end up suspended");
    for v in [
        m.attaches,
        m.attach_rejects,
        m.handovers,
        m.detaches,
        m.bearer_updates,
        m.migrations_out,
        m.migrations_in,
        m.s1ap_rx,
        m.service_requests,
        m.releases,
        cp.user_count() as u64,
    ] {
        digest = fnv(digest, &v.to_le_bytes());
    }
    digest
}

#[test]
fn sequential_delivery_matches_pre_refactor_goldens() {
    // Captured on the pre-refactor run-to-completion control plane.
    let golden: [(u64, u64); 3] = [(1, GOLDEN_SEED_1), (7, GOLDEN_SEED_7), (42, GOLDEN_SEED_42)];
    for (seed, want) in golden {
        let got = run_workload(seed);
        assert_eq!(got, want, "seed {seed}: digest {got:#018x} != golden {want:#018x}");
    }
}

// Golden digests; see capture notes in module docs.
const GOLDEN_SEED_1: u64 = 0x4bf0_1a6f_2b4a_b0ae;
const GOLDEN_SEED_7: u64 = 0x438d_8af5_8a9d_5611;
const GOLDEN_SEED_42: u64 = 0x2b8e_b170_c94f_7399;

#[test]
#[ignore]
fn print_digests() {
    for seed in [1u64, 7, 42] {
        println!("seed {seed}: {:#018x}", run_workload(seed));
    }
}
