//! Migration integration tests: users move between slices under live
//! traffic without losing packets, counters, rate-limiter fill, or
//! tunnel validity (paper §4.3 / §6.6).

use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
use pepc::ctrl::CtrlEvent;
use pepc::node::PepcNode;
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};

fn node(slices: usize) -> PepcNode {
    let config = EpcConfig {
        slices,
        slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..Default::default() },
        ..EpcConfig::default()
    };
    PepcNode::new(config, None)
}

fn uplink(node: &mut PepcNode, imsi: u64) -> Mbuf {
    let k = node.demux().slice_for_imsi(imsi).unwrap();
    let ctx = node.slice(k).ctrl.context_of(imsi).unwrap();
    let (teid, ue_ip) = {
        let c = ctx.ctrl_read();
        (c.tunnels.gw_teid, c.ue_ip)
    };
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(ue_ip, 0x0808_0808, IpProto::Udp, UDP_HDR_LEN + 8).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(1, 2, 8).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    m.extend(&hdr);
    m.extend(&[0u8; 8]);
    encap_gtpu(&mut m, 0xC0A8_0001, node.config().gw_ip, teid).unwrap();
    m
}

#[test]
fn counters_and_keys_survive_repeated_migration() {
    let mut n = node(3);
    n.attach(7);
    for round in 0..30 {
        let pkt = uplink(&mut n, 7);
        assert!(n.process(pkt).is_forward(), "round {round}");
        let cur = n.demux().slice_for_imsi(7).unwrap();
        let target = (cur + 1) % 3;
        assert!(n.migrate(7, target), "round {round}");
    }
    let k = n.demux().slice_for_imsi(7).unwrap();
    let counters = n.slice(k).ctrl.counters_of(7).unwrap();
    assert_eq!(counters.uplink_packets, 30, "every packet counted exactly once");
}

#[test]
fn migration_of_many_users_is_complete_and_disjoint() {
    let mut n = node(2);
    for imsi in 0..200u64 {
        n.attach(imsi);
    }
    // Move every user to slice 0.
    for imsi in 0..200u64 {
        let cur = n.demux().slice_for_imsi(imsi).unwrap();
        if cur != 0 {
            assert!(n.migrate(imsi, 0));
        }
    }
    assert_eq!(n.slice(0).ctrl.user_count(), 200);
    assert_eq!(n.slice(1).ctrl.user_count(), 0);
    // All still serviceable.
    for imsi in (0..200u64).step_by(37) {
        let pkt = uplink(&mut n, imsi);
        assert!(n.process(pkt).is_forward());
    }
}

#[test]
fn parked_packets_drain_to_target_in_order() {
    // Drive the slice-level migration manually so packets are parked
    // while the user is in flight.
    let mut n = node(2);
    n.attach(7);
    let src = n.demux().slice_for_imsi(7).unwrap();

    // Build packets before migration so keys are stable.
    let pkts: Vec<Mbuf> = (0..5).map(|_| uplink(&mut n, 7)).collect();

    // The node's migrate() is atomic from the caller's view; emulate the
    // in-flight window by parking manually via the same Demux path:
    // packets arriving during migration come out via migration_out.
    assert!(n.migrate(7, 1 - src));
    for p in pkts {
        assert!(n.process(p).is_forward(), "post-migration packets flow directly");
    }
    assert_eq!(n.take_migration_output().len(), 0, "nothing parked after completion");
}

#[test]
fn migrating_rate_limiter_state_prevents_burst_reset() {
    // A user at its AMBR limit must NOT get a fresh token bucket by
    // migrating (that would make migration a rate-limit escape hatch).
    let mut n = node(2);
    n.attach(7);
    let k = n.demux().slice_for_imsi(7).unwrap();
    n.slice(k).handle_ctrl_event(CtrlEvent::ModifyBearer { imsi: 7, ambr_kbps: 8 }); // 1 kB/s
    n.slice(k).sync_now();

    // Exhaust the bucket.
    let mut forwarded = 0;
    for _ in 0..100 {
        let pkt = uplink(&mut n, 7);
        if n.process(pkt).is_forward() {
            forwarded += 1;
        }
    }
    assert!(forwarded < 100, "rate limit engaged");

    // Migrate and immediately retry: still limited.
    assert!(n.migrate(7, 1 - k));
    let mut post = 0;
    for _ in 0..50 {
        let pkt = uplink(&mut n, 7);
        if n.process(pkt).is_forward() {
            post += 1;
        }
    }
    assert!(post <= 2, "bucket fill level travelled with the user (got {post})");
}

#[test]
fn migrate_unknown_or_invalid_is_safe() {
    let mut n = node(2);
    n.attach(7);
    assert!(!n.migrate(999, 0));
    assert!(!n.migrate(7, 5));
    let cur = n.demux().slice_for_imsi(7).unwrap();
    assert!(!n.migrate(7, cur));
    // User unharmed.
    let pkt = uplink(&mut n, 7);
    assert!(n.process(pkt).is_forward());
}
