// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! End-to-end chaos test for the HA subsystem (`pepc-ha`): a seeded mixed
//! workload runs against a 3-node replicated cluster, one node is killed
//! mid-run, and the coordinator must recover automatically:
//!
//! * every user attached to the dead node comes back on a survivor with a
//!   `ControlState` identical to the instant of the crash (zero
//!   control-state loss — control events replicate synchronously);
//! * counter staleness is bounded by the replication interval;
//! * packet conservation holds cluster-wide, including the failover
//!   blackout drops;
//! * surviving users' signaling homes never move (Maglev repair is
//!   minimally disruptive);
//! * the whole run is a pure function of its seed (three seeds in CI, and
//!   an identical-seed determinism check).

use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
use pepc::ctrl::CtrlEvent;
use pepc::{ControlState, MetricsSnapshot};
use pepc_fabric::FaultSpec;
use pepc_ha::{FailoverReport, HaCluster, HaConfig, NodeHealth};
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 3;
const USERS: u64 = 32;
const IMSI_BASE: u64 = 404_01_0000000000;
const ROUNDS: usize = 60;
const KILL_ROUND: usize = 30;
const PACKETS_PER_ROUND: usize = 32;
const COUNTER_INTERVAL: u64 = 8;

fn uplink(teid: u32, ue_ip: u32) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + 8];
    Ipv4Hdr::new(ue_ip, 0x0808_0808, IpProto::Udp, 8).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    m.extend(&hdr);
    encap_gtpu(&mut m, 0xC0A8_0001, 0x0AFE_0001, teid).unwrap();
    m
}

fn downlink(ue_ip: u32) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + 8];
    Ipv4Hdr::new(0x0808_0808, ue_ip, IpProto::Udp, 8).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    m.extend(&hdr);
    m
}

fn ctrl_state_of(ha: &mut HaCluster, node: usize, imsi: u64) -> Option<ControlState> {
    let n = ha.cluster().node(node);
    let s = n.demux().slice_for_imsi(imsi)?;
    let ctx = n.slice(s).ctrl.context_of(imsi)?;
    let state = ctx.ctrl_read().clone();
    Some(state)
}

/// Everything a chaos run produced that must be a pure function of its
/// seed.
struct ChaosOutcome {
    victim: usize,
    victims: Vec<u64>,
    /// `ControlState` of every victim user the instant before the kill.
    ground_truth: Vec<(u64, ControlState)>,
    /// `ControlState` of every victim user right after failover completed.
    adopted: Vec<(u64, ControlState)>,
    /// (imsi, home) of surviving users before and after the repair.
    survivor_homes_before: Vec<(u64, usize)>,
    survivor_homes_after: Vec<(u64, usize)>,
    report: FailoverReport,
    snap: MetricsSnapshot,
    forwarded: u64,
    offered: u64,
}

fn run_chaos(seed: u64) -> ChaosOutcome {
    let template = EpcConfig {
        slices: 2,
        slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..SliceConfig::default() },
        ..EpcConfig::default()
    };
    // The replication wires run with seeded adjacent reordering: frames
    // arrive shuffled and the standby's sequence numbers must cope.
    let cfg = HaConfig {
        counter_interval: COUNTER_INTERVAL,
        fault: FaultSpec { reorder_chance: 0.05, seed, ..FaultSpec::none() },
        ..HaConfig::default()
    };
    let mut ha = HaCluster::new(NODES, template, cfg);

    let imsis: Vec<u64> = (0..USERS).map(|i| IMSI_BASE + i).collect();
    let mut keys = Vec::with_capacity(imsis.len());
    for &imsi in &imsis {
        ha.attach(imsi);
        assert!(ha.ctrl_event(CtrlEvent::S1Handover {
            imsi,
            new_enb_teid: 0xE000_0000 + (imsi as u32 & 0xFFFF),
            new_enb_ip: 0xC0A8_0001,
        }));
        let node = ha.owner_of(imsi).unwrap();
        let state = ctrl_state_of(&mut ha, node, imsi).unwrap();
        keys.push((state.tunnels.gw_teid, state.ue_ip));
    }

    let victim = ha.owner_of(imsis[0]).unwrap();
    let victims: Vec<u64> = imsis.iter().copied().filter(|&i| ha.owner_of(i) == Some(victim)).collect();
    let survivors: Vec<u64> = imsis.iter().copied().filter(|&i| ha.owner_of(i) != Some(victim)).collect();
    assert!(victims.len() >= 4, "victim node too empty to be interesting: {}", victims.len());

    let mut rng = StdRng::seed_from_u64(seed ^ 0x000C_4A05);
    let mut ground_truth = Vec::new();
    let mut adopted = Vec::new();
    let survivor_homes_before: Vec<(u64, usize)> = survivors.iter().map(|&i| (i, ha.owner_of(i).unwrap())).collect();
    let mut offered = 0u64;
    let mut forwarded = 0u64;

    for round in 0..ROUNDS {
        // One signaling event per round, on a random user. Events for
        // users in the blackout window are rejected — that's the point.
        let imsi = imsis[rng.gen_range(0..imsis.len())];
        let ev = if rng.gen_bool(0.5) {
            CtrlEvent::ModifyBearer { imsi, ambr_kbps: 100_000 + rng.gen_range(0..1000) }
        } else {
            CtrlEvent::S1Handover {
                imsi,
                new_enb_teid: 0xE100_0000 + rng.gen_range(0..0xFFFF),
                new_enb_ip: 0xC0A8_0001,
            }
        };
        let _ = ha.ctrl_event(ev);

        if round == KILL_ROUND {
            for &imsi in &victims {
                ground_truth.push((imsi, ctrl_state_of(&mut ha, victim, imsi).unwrap()));
            }
            ha.kill_node(victim);
        }

        for _ in 0..PACKETS_PER_ROUND {
            let (teid, ue_ip) = keys[rng.gen_range(0..keys.len())];
            let m = if rng.gen_bool(0.5) { uplink(teid, ue_ip) } else { downlink(ue_ip) };
            offered += 1;
            if ha.process(m).is_forward() {
                forwarded += 1;
            }
        }

        ha.tick();
        if ha.failovers().len() == 1 && adopted.is_empty() {
            // Failover just completed: capture the adopted states before
            // post-recovery signaling mutates them again.
            for &imsi in &victims {
                let node = ha.owner_of(imsi).unwrap();
                adopted.push((imsi, ctrl_state_of(&mut ha, node, imsi).unwrap()));
            }
        }
    }

    assert_eq!(ha.health(victim), NodeHealth::Dead);
    assert_eq!(ha.failovers().len(), 1, "exactly one failover");
    let report = ha.failovers()[0];
    let survivor_homes_after: Vec<(u64, usize)> = survivors.iter().map(|&i| (i, ha.owner_of(i).unwrap())).collect();
    let snap = ha.metrics_snapshot();
    ChaosOutcome {
        victim,
        victims,
        ground_truth,
        adopted,
        survivor_homes_before,
        survivor_homes_after,
        report,
        snap,
        forwarded,
        offered,
    }
}

fn assert_chaos_invariants(seed: u64) {
    let o = run_chaos(seed);

    // The failover happened, for the right node, recovering every user.
    assert_eq!(o.report.node, o.victim);
    assert_eq!(o.report.users_recovered, o.victims.len(), "seed {seed}: user lost in failover");

    // Zero control-state loss: each adopted state is byte-identical to
    // the state on the node the instant it died.
    assert_eq!(o.adopted.len(), o.victims.len(), "seed {seed}: adoption snapshot incomplete");
    for ((imsi_a, truth), (imsi_b, got)) in o.ground_truth.iter().zip(&o.adopted) {
        assert_eq!(imsi_a, imsi_b);
        assert_eq!(truth, got, "seed {seed}: imsi {imsi_a} control state diverged");
    }

    // Charging loss is bounded by the replication interval.
    assert!(
        o.report.max_counter_staleness <= COUNTER_INTERVAL,
        "seed {seed}: staleness {} > interval {COUNTER_INTERVAL}",
        o.report.max_counter_staleness
    );

    // Maglev repair was minimally disruptive: no surviving user's
    // signaling home moved.
    assert_eq!(o.survivor_homes_before, o.survivor_homes_after, "seed {seed}: survivors moved");

    // Packet conservation holds cluster-wide, blackout included, and the
    // blackout was actually exercised.
    assert!(o.snap.conservation_holds(), "seed {seed}: conservation violated");
    let totals = o.snap.data_totals();
    assert!(totals.drop_failover > 0, "seed {seed}: no blackout traffic seen");
    assert_eq!(totals.rx, totals.forwarded + totals.drops_total(), "seed {seed}: drop taxonomy leak");
    assert_eq!(o.offered, totals.rx, "seed {seed}: offered packets unaccounted");
    // Traffic flowed again after recovery: the blackout ate less than the
    // post-recovery tail delivered.
    assert!(o.forwarded > o.offered * 6 / 10, "seed {seed}: forwarded {} of {}", o.forwarded, o.offered);
    // Replication wires carried frames; reordering fired somewhere.
    assert_eq!(o.snap.wires.len(), NODES);
    assert!(o.snap.wires.iter().all(|w| w.forwarded > 0));
}

#[test]
fn chaos_failover_seed_1() {
    assert_chaos_invariants(1);
}

#[test]
fn chaos_failover_seed_2() {
    assert_chaos_invariants(2);
}

#[test]
fn chaos_failover_seed_3() {
    assert_chaos_invariants(3);
}

#[test]
fn identical_seeds_are_deterministic() {
    let a = run_chaos(7);
    let b = run_chaos(7);
    assert_eq!(a.victim, b.victim);
    assert_eq!(a.victims, b.victims);
    assert_eq!(a.report, b.report);
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.forwarded, b.forwarded);
    assert!(a.snap.deterministic_eq(&b.snap), "same seed diverged:\n{}\nvs\n{}", a.snap.render(), b.snap.render());
    for (x, y) in a.adopted.iter().zip(&b.adopted) {
        assert_eq!(x, y);
    }
}
