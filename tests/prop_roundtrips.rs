//! Property-based tests (proptest) on the core data structures and
//! codecs: arbitrary inputs must round-trip exactly or be rejected
//! cleanly — never panic, never alias, never lose a user.

use pepc::state::ControlState;
use pepc::table::{PepcStore, StateStore};
use pepc::twolevel::TwoLevelTable;
use pepc::{LatencyHistogram, MetricsSnapshot, RingGauge, SliceSnapshot};
use pepc_net::bpf::{BpfProgram, Field, Insn};
use pepc_net::gtp::{decap_gtpu, encap_gtpu, GtpcMsg};
use pepc_net::{EtherHdr, FiveTuple, GtpuHdr, Ipv4Hdr, Mbuf, TcpHdr, UdpHdr};
use pepc_sigproto::nas::{imsi_from_bcd, imsi_to_bcd, NasMsg};
use pepc_sigproto::s1ap::S1apPdu;
use proptest::prelude::*;

proptest! {
    #[test]
    fn mbuf_push_pull_sequences_preserve_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        ops in proptest::collection::vec(1usize..32, 0..12),
    ) {
        let mut m = Mbuf::from_payload(&payload);
        let mut pushed = Vec::new();
        for (i, &n) in ops.iter().enumerate() {
            if i % 2 == 0 {
                let bytes = vec![i as u8; n];
                if m.push_bytes(&bytes).is_ok() {
                    pushed.push(n);
                }
            } else if let Some(n2) = pushed.pop() {
                m.pull(n2).unwrap();
            }
        }
        // Pop whatever is left.
        while let Some(n) = pushed.pop() {
            m.pull(n).unwrap();
        }
        prop_assert_eq!(m.data(), &payload[..]);
    }

    #[test]
    fn ipv4_header_roundtrips(
        src in any::<u32>(), dst in any::<u32>(), proto in any::<u8>(),
        dscp in 0u8..64, ttl in any::<u8>(), payload_len in 0usize..1400,
    ) {
        let mut h = Ipv4Hdr::new(src, dst, pepc_net::ipv4::IpProto::from_u8(proto), payload_len);
        h.dscp = dscp;
        h.ttl = ttl;
        let mut buf = [0u8; 20];
        h.emit(&mut buf).unwrap();
        let parsed = Ipv4Hdr::parse(&buf).unwrap();
        prop_assert_eq!(parsed, h);
    }

    #[test]
    fn gtpu_encap_decap_roundtrips(
        payload in proptest::collection::vec(any::<u8>(), 20..512),
        teid in any::<u32>(), src in any::<u32>(), dst in any::<u32>(),
    ) {
        // Use an inner IPv4 wrapper so decap's sanity checks pass.
        let mut m = Mbuf::new();
        let mut hdr = [0u8; 20];
        Ipv4Hdr::new(1, 2, pepc_net::ipv4::IpProto::Other(200), payload.len()).emit(&mut hdr).unwrap();
        m.extend(&hdr);
        m.extend(&payload);
        let before = m.data().to_vec();
        encap_gtpu(&mut m, src, dst, teid).unwrap();
        let (gtp, outer) = decap_gtpu(&mut m).unwrap();
        prop_assert_eq!(gtp.teid, teid);
        prop_assert_eq!(outer.src, src);
        prop_assert_eq!(m.data(), &before[..]);
    }

    #[test]
    fn gtpc_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = GtpcMsg::decode(&bytes); // Ok or Err, never panic
    }

    #[test]
    fn nas_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = NasMsg::decode(&bytes);
    }

    #[test]
    fn s1ap_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = S1apPdu::decode(&bytes);
    }

    #[test]
    fn sctp_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = pepc_sigproto::sctp::SctpPacket::decode(&bytes);
    }

    #[test]
    fn imsi_bcd_roundtrips_all_15_digit_values(imsi in 0u64..1_000_000_000_000_000) {
        prop_assert_eq!(imsi_from_bcd(&imsi_to_bcd(imsi)).unwrap(), imsi);
    }

    #[test]
    fn nas_attach_roundtrips(imsi in 0u64..1_000_000_000_000_000, cap in any::<u32>()) {
        let m = NasMsg::AttachRequest { imsi, ue_capability: cap };
        prop_assert_eq!(NasMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn verified_bpf_programs_never_panic_and_terminate(
        insns in proptest::collection::vec(
            prop_oneof![
                (0u8..5).prop_map(|f| Insn::Ld(match f {
                    0 => Field::SrcIp, 1 => Field::DstIp, 2 => Field::SrcPort,
                    3 => Field::DstPort, _ => Field::Proto,
                })),
                any::<u32>().prop_map(Insn::And),
                (any::<u32>(), 0u8..8, 0u8..8).prop_map(|(k, jt, jf)| Insn::JmpEq { k, jt, jf }),
                (any::<u32>(), 0u8..8, 0u8..8).prop_map(|(k, jt, jf)| Insn::JmpGe { k, jt, jf }),
                any::<u32>().prop_map(Insn::Ret),
            ],
            1..40,
        ),
        ft in (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), any::<u8>()),
    ) {
        // Whatever the verifier accepts must run to completion on any
        // five-tuple; what it rejects must never be runnable.
        if let Ok(p) = BpfProgram::new(insns) {
            let ft = FiveTuple { src_ip: ft.0, dst_ip: ft.1, src_port: ft.2, dst_port: ft.3, proto: ft.4 };
            let _ = p.run(&ft);
        }
    }

    #[test]
    fn two_level_table_conserves_users(
        keys in proptest::collection::hash_set(0u64..500, 1..100),
        ops in proptest::collection::vec((0u64..500, 0u8..3), 0..200),
    ) {
        let mut t = TwoLevelTable::new(512, 10);
        for &k in &keys {
            t.insert_active(k, k, 0);
        }
        let n = t.len();
        for (i, (k, op)) in ops.into_iter().enumerate() {
            match op {
                0 => { let _ = t.get(k, i as u64); }
                1 => { t.demote(k); }
                _ => { t.evict_idle(i as u64); }
            }
            prop_assert_eq!(t.len(), n, "user count drifted");
        }
        for &k in &keys {
            prop_assert_eq!(t.get(k, u64::MAX), Some(&k));
        }
    }

    #[test]
    fn histogram_bucket_floor_inverts_index(v in any::<u64>()) {
        // Every value lands in a bucket whose floor is ≤ the value, and
        // the floor itself maps back to the same bucket (the floor is the
        // smallest member of its bucket).
        let idx = LatencyHistogram::index(v);
        let floor = LatencyHistogram::bucket_floor(idx);
        prop_assert!(floor <= v.max(1), "floor {floor} above value {v}");
        prop_assert_eq!(LatencyHistogram::index(floor), idx);
        // Log-linear guarantee: relative bucket width ≤ 1/16 + rounding.
        if v >= 16 {
            prop_assert!((v - floor) as f64 <= v as f64 * 0.0626, "bucket too wide for {v}");
        }
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in proptest::collection::vec(1u64..1_000_000_000, 0..64),
        ys in proptest::collection::vec(1u64..1_000_000_000, 0..64),
        zs in proptest::collection::vec(1u64..1_000_000_000, 0..64),
    ) {
        let hist = |vals: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        // (x ∪ y) ∪ z == x ∪ (y ∪ z) == recording everything into one.
        let mut left = hist(&xs);
        left.merge(&hist(&ys));
        left.merge(&hist(&zs));
        let mut yz = hist(&ys);
        yz.merge(&hist(&zs));
        let mut right = hist(&xs);
        right.merge(&yz);
        prop_assert_eq!(&left, &right);
        let mut all = xs.clone();
        all.extend(&ys);
        all.extend(&zs);
        prop_assert_eq!(&left, &hist(&all));
        // x ∪ y == y ∪ x.
        let mut xy = hist(&xs);
        xy.merge(&hist(&ys));
        let mut yx = hist(&ys);
        yx.merge(&hist(&xs));
        prop_assert_eq!(xy, yx);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        vals in proptest::collection::vec(1u64..10_000_000_000, 1..128),
        qs_permille in proptest::collection::vec(0u64..1001, 2..8),
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = qs_permille.clone();
        sorted.sort_unstable();
        let mut prev = 0u64;
        for &qp in &sorted {
            let q = qp as f64 / 1000.0;
            let x = h.quantile_ns(q);
            prop_assert!(x >= prev, "quantile not monotone at q={q}");
            prev = x;
        }
        // All quantiles live within the recorded range (floors may sit
        // below the true minimum, never above the maximum).
        prop_assert!(h.quantile_ns(1.0) <= h.max_ns());
        prop_assert!(h.quantile_ns(0.0) <= *vals.iter().min().unwrap());
    }

    #[test]
    fn metrics_snapshot_json_roundtrips_exactly(
        rx_extra in 0u64..1000, fwd in 0u64..1000, drops in proptest::collection::vec(0u64..250, 4..5),
        users in 0u64..5000, lat in proptest::collection::vec(1u64..100_000_000, 0..64),
        depth in 0u64..4096,
    ) {
        let mut s = SliceSnapshot::new(7);
        s.users = users;
        s.data.forwarded = fwd;
        s.data.drop_unknown_user = drops[0];
        s.data.drop_gate = drops[1];
        s.data.drop_qos = drops[2];
        s.data.drop_malformed = drops[3];
        s.data.rx = fwd + drops.iter().sum::<u64>() + rx_extra;
        s.ctrl.attaches = users;
        for &v in &lat {
            s.pipeline_ns.record(v);
            s.attach_ns.record(v * 3);
        }
        s.rings.push(RingGauge { name: "update_ring".into(), depth, capacity: 65536 });
        let wires = vec![pepc::WireStat {
            name: "repl:node1".into(),
            forwarded: fwd,
            dropped: drops[0],
            ..Default::default()
        }];
        let snap = MetricsSnapshot { slices: vec![s], wires, shard_packets: Vec::new() };
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        prop_assert_eq!(&back, &snap);
        prop_assert!(back.deterministic_eq(&snap));
        // Conservation is exactly "no unattributed packets".
        prop_assert_eq!(back.conservation_holds(), rx_extra == 0);
        prop_assert_eq!(back.data_totals().drops_total(), drops.iter().sum::<u64>());
    }

    #[test]
    fn ring_burst_ops_match_fifo_model(
        cap_hint in 1usize..64,
        ops in proptest::collection::vec((any::<bool>(), 1usize..40), 1..60),
    ) {
        // Model check of the once-per-refresh free/available counting in
        // push_burst/pop_burst: any op interleaving must behave exactly
        // like a bounded FIFO queue.
        use std::collections::VecDeque;
        let (mut tx, mut rx) = pepc_fabric::ring::SpscRing::with_capacity::<u32>(cap_hint);
        let cap = tx.capacity();
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        let mut out = Vec::new();
        for (push, n) in ops {
            if push {
                let mut it = next..u32::MAX;
                let pushed = tx.push_burst(&mut (&mut it).take(n));
                prop_assert_eq!(pushed, (cap - model.len()).min(n), "burst fills exactly the free slots");
                for v in next..next + pushed as u32 {
                    model.push_back(v);
                }
                next += pushed as u32;
            } else {
                out.clear();
                let taken = rx.pop_burst(&mut out, n);
                prop_assert_eq!(taken, model.len().min(n), "burst drains exactly the available slots");
                prop_assert_eq!(out.len(), taken);
                for v in &out {
                    prop_assert_eq!(Some(*v), model.pop_front());
                }
            }
        }
        prop_assert_eq!(rx.len(), model.len());
    }

    #[test]
    fn maglev_repair_resteers_only_the_dead_backends_keys(
        n in 3usize..8,
        dead_pick in any::<u64>(),
        size_pick in 0usize..3,
        key_base in any::<u64>(),
    ) {
        // Maglev's minimal-disruption guarantee, across three table sizes:
        // after a backend dies and the table is repaired in place, every
        // key that hashed to a survivor still hashes to the same survivor;
        // only the dead backend's keys move.
        let m = [251usize, 1031, 65537][size_pick];
        let names: Vec<String> = (0..n).map(|k| format!("pepc-node-{k}")).collect();
        let mut lb = pepc_fabric::Maglev::new(&names, m);
        let dead = (dead_pick as usize) % n;
        let keys: Vec<u64> = (0..2000u64).map(|i| key_base.wrapping_add(i)).collect();
        let before: Vec<usize> = keys.iter().map(|&k| lb.lookup(k)).collect();
        lb.remove_backend(dead);
        prop_assert_eq!(lb.alive_count(), n - 1);
        for (&key, &owner) in keys.iter().zip(&before) {
            let now = lb.lookup(key);
            prop_assert!(now != dead, "key {key} still on the dead backend");
            if owner != dead {
                prop_assert_eq!(now, owner, "surviving key {key} re-steered");
            }
        }
    }

    #[test]
    fn checkpoint_parse_fuzz_never_panics_or_partially_applies(
        users in 1u64..8,
        cut in any::<u64>(),
        flip_at in any::<u64>(),
        flip_bits in 1u8..255,
    ) {
        use pepc::ctrl::{Allocator, ControlPlane, CtrlEvent};
        let fresh = || ControlPlane::new(
            0x0AFE_0001,
            1,
            Allocator { teid_base: 0x1000, ue_ip_base: 0x0A00_0001, guti_base: 0xD000, mme_ue_id_base: 1 },
            None,
        );
        let mut original = fresh();
        for imsi in 0..users {
            original.apply_event(CtrlEvent::Attach { imsi });
        }
        original.take_updates();
        let bytes = pepc::recovery::checkpoint(&original);

        // Truncation at any point must reject cleanly (except the full
        // buffer, which restores) and leave the target untouched on error.
        let cut = (cut as usize) % (bytes.len() + 1);
        let mut target = fresh();
        match pepc::recovery::restore(&mut target, &bytes[..cut]) {
            Ok(n) => {
                prop_assert_eq!(cut, bytes.len(), "partial buffer restored");
                prop_assert_eq!(n as u64, users);
            }
            Err(_) => {
                prop_assert_eq!(target.user_count(), 0, "failed restore left users behind");
                prop_assert!(!target.has_updates(), "failed restore queued updates");
            }
        }

        // A flipped byte either still parses to a valid document (and
        // fully applies) or rejects without touching anything — and the
        // whole-checkpoint invariant holds either way: never a panic,
        // never a partial apply.
        let mut corrupt = bytes.clone();
        let at = (flip_at as usize) % corrupt.len();
        corrupt[at] ^= flip_bits;
        let mut target = fresh();
        match pepc::recovery::restore(&mut target, &corrupt) {
            Ok(n) => prop_assert_eq!(target.user_count() as u64, n as u64),
            Err(_) => {
                prop_assert_eq!(target.user_count(), 0);
                prop_assert!(!target.has_updates());
            }
        }
    }

    #[test]
    fn counter_cell_publish_read_roundtrips_exactly(
        fields in proptest::collection::vec(any::<u64>(), 8..9),
    ) {
        // An arbitrary CounterState pushed through the seqlock cell must
        // come back bit-identical — publish/read is a pure round-trip.
        use pepc::state::{CounterState, UeContext};
        let ctx = UeContext::new(ControlState::new(1));
        let c = CounterState {
            uplink_packets: fields[0],
            uplink_bytes: fields[1],
            downlink_packets: fields[2],
            downlink_bytes: fields[3],
            qos_drops: fields[4],
            last_activity_ns: fields[5],
            ambr_tokens: fields[6],
            ambr_last_refill_ns: fields[7],
        };
        ctx.publish_counters(c);
        prop_assert_eq!(ctx.counters(), c);
        let (again, retries) = ctx.counters_with_retries();
        prop_assert_eq!(again, c);
        prop_assert_eq!(retries, 0, "uncontended read never retries");
    }

    #[test]
    fn ctrl_view_always_equals_lock_projection(
        muts in proptest::collection::vec((0u8..5, any::<u32>()), 0..40),
    ) {
        // After any sequence of control-plane mutations (each through the
        // publishing write guard), the lock-free view must equal what the
        // RwLock-era reader would have projected from the locked state.
        use pepc::state::{CtrlView, UeContext};
        let ctx = UeContext::new(ControlState::new(9));
        for (which, v) in muts {
            {
                let mut g = ctx.ctrl_write();
                match which {
                    0 => g.tunnels.enb_teid = v,
                    1 => g.tunnels.enb_ip = v,
                    2 => g.qos.ambr_kbps = v,
                    3 => g.qos.qci = v as u8,
                    _ => g.pcef_rules.push(v as u16),
                }
            }
            prop_assert_eq!(ctx.ctrl_view(), CtrlView::project(&ctx.ctrl_read()));
        }
    }

    #[test]
    fn pepc_store_counters_are_exact(
        visits in proptest::collection::vec((0u64..8, any::<bool>(), 1u64..1500), 0..200),
    ) {
        let store = PepcStore::new(8);
        for uid in 0..8 {
            store.insert(uid, ControlState::new(uid));
        }
        let mut expect_pkts = [0u64; 8];
        let mut expect_bytes = [0u64; 8];
        for (uid, up, bytes) in &visits {
            store.data_path_visit(*uid, *up, *bytes, 1, &mut |_| true).unwrap();
            expect_pkts[*uid as usize] += 1;
            expect_bytes[*uid as usize] += bytes;
        }
        for uid in 0..8u64 {
            let s = store.read_counters(uid).unwrap();
            prop_assert_eq!(s.uplink_packets + s.downlink_packets, expect_pkts[uid as usize]);
            prop_assert_eq!(s.uplink_bytes + s.downlink_bytes, expect_bytes[uid as usize]);
        }
    }
}

// ---------------------------------------------------------------------------
// No-panic fuzzing of the packet parsers. These are the functions the data
// path calls on every frame straight off the wire, so the contract is
// total: any byte string — truncated, bit-flipped, or pure noise — must
// come back as `Ok` or a typed `Err`, never a panic, and never an
// out-of-bounds slice. Two input families: raw arbitrary bytes, and a
// valid packet mutated (every truncation point, seeded bit flips) so the
// fuzz actually spends time near the interesting length/flag boundaries.
// ---------------------------------------------------------------------------

/// A well-formed GTP-U encapsulated user packet (outer IPv4 + UDP + GTP-U
/// around an inner IPv4/payload), as built by the real encap path.
fn valid_gtpu_packet(payload_len: usize) -> Vec<u8> {
    let inner_payload = vec![0xABu8; payload_len];
    let mut inner = Mbuf::from_payload(&inner_payload);
    let ip = Ipv4Hdr::new(0x0A00_0001, 0x0808_0808, pepc_net::ipv4::IpProto::Udp, payload_len);
    let mut ip_bytes = [0u8; 20];
    ip.emit(&mut ip_bytes).unwrap();
    inner.push_bytes(&ip_bytes).unwrap();
    pepc_net::gtp::encap_gtpu(&mut inner, 0xC0A8_0001u32, 0x0AFE_0001, 0x1000_0042).unwrap();
    inner.data().to_vec()
}

proptest! {
    #[test]
    fn ipv4_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Hdr::parse(&bytes);
    }

    #[test]
    fn tcp_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = TcpHdr::parse(&bytes);
    }

    #[test]
    fn udp_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = UdpHdr::parse(&bytes);
    }

    #[test]
    fn gtpu_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = GtpuHdr::parse(&bytes);
    }

    #[test]
    fn ether_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = EtherHdr::parse(&bytes);
    }

    #[test]
    fn five_tuple_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let _ = FiveTuple::from_ipv4(&bytes);
    }

    #[test]
    fn decap_never_panics_on_truncated_packets(
        payload_len in 0usize..200,
        cut in 0usize..256,
    ) {
        let pkt = valid_gtpu_packet(payload_len);
        let cut = cut.min(pkt.len());
        let mut m = Mbuf::from_payload(&pkt[..cut]);
        let res = pepc_net::gtp::decap_gtpu(&mut m);
        if cut < pkt.len() {
            prop_assert!(res.is_err(), "truncated to {cut} of {} bytes yet decap succeeded", pkt.len());
        } else {
            prop_assert!(res.is_ok());
        }
    }

    #[test]
    fn decap_never_panics_on_bit_flipped_packets(
        payload_len in 0usize..200,
        flips in proptest::collection::vec((any::<usize>(), 0u8..8), 1..8),
    ) {
        let mut pkt = valid_gtpu_packet(payload_len);
        for (pos, bit) in flips {
            let i = pos % pkt.len();
            pkt[i] ^= 1 << bit;
        }
        let mut m = Mbuf::from_payload(&pkt);
        // Flips may or may not land in a field a parser validates; both
        // outcomes are fine — only a panic is a bug.
        let _ = pepc_net::gtp::decap_gtpu(&mut m);
    }

    #[test]
    fn five_tuple_never_panics_on_mutated_tcp_packets(
        cut in 0usize..64,
        flips in proptest::collection::vec((any::<usize>(), 0u8..8), 0..6),
    ) {
        // A valid IPv4+TCP packet, then truncate and flip.
        let ip = Ipv4Hdr::new(1, 2, pepc_net::ipv4::IpProto::Tcp, 20);
        let mut pkt = [0u8; 40];
        ip.emit(&mut pkt[..20]).unwrap();
        pkt[20..22].copy_from_slice(&443u16.to_be_bytes());
        pkt[22..24].copy_from_slice(&55555u16.to_be_bytes());
        for (pos, bit) in flips {
            let i = pos % pkt.len();
            pkt[i] ^= 1 << bit;
        }
        let cut = cut.min(pkt.len());
        let _ = FiveTuple::from_ipv4(&pkt[..cut]);
    }

    #[test]
    fn gtpu_parse_rejects_every_truncation_of_a_valid_header(
        teid in any::<u32>(), len in any::<u16>(),
    ) {
        let hdr = GtpuHdr::gpdu(teid, len as usize);
        let mut buf = [0u8; 8];
        hdr.emit(&mut buf).unwrap();
        let parsed = GtpuHdr::parse(&buf).unwrap();
        prop_assert_eq!(parsed.teid, teid);
        for cut in 0..8 {
            prop_assert!(GtpuHdr::parse(&buf[..cut]).is_err());
        }
    }
}

// ---------------------------------------------------------------------------
// Stateful delivery fuzzing of the procedure-machine dispatcher (PR 6).
// The PR-5 fuzz above proves the *codecs* are total; these extend the
// contract to stateful delivery: an arbitrary PDU sequence — well-formed
// messages with clashing identifiers, truncated NAS, bit-flipped NAS —
// must never panic the control plane, must emit a bounded number of PDUs
// per inbound message, and must keep the signaling/procedure
// conservation identities exact after every single delivery.
// ---------------------------------------------------------------------------

fn fuzz_control_plane() -> pepc::ctrl::ControlPlane {
    let hss = std::sync::Arc::new(pepc_backend::Hss::new());
    hss.provision_range(1, 4, 100_000);
    let pcrf = std::sync::Arc::new(pepc_backend::Pcrf::with_standard_rules());
    let proxy = std::sync::Arc::new(pepc::proxy::Proxy::new(hss, pcrf, 1, 40401));
    let alloc =
        pepc::ctrl::Allocator { teid_base: 0x1000, ue_ip_base: 0x0A00_0001, guti_base: 0xD00D_0000, mme_ue_id_base: 1 };
    pepc::ctrl::ControlPlane::new(0x0AFE_0001, 1, alloc, Some(proxy))
}

/// NAS payloads over a deliberately tiny identifier space so sequences
/// actually collide with each other's sessions.
fn small_nas() -> impl Strategy<Value = NasMsg> {
    prop_oneof![
        (1u64..5, any::<u32>()).prop_map(|(imsi, cap)| NasMsg::AttachRequest { imsi, ue_capability: cap }),
        any::<u64>().prop_map(|res| NasMsg::AuthenticationResponse { res }),
        Just(NasMsg::SecurityModeComplete),
        Just(NasMsg::AttachComplete),
        (0u64..8).prop_map(|g| NasMsg::DetachRequest { guti: 0xD00D_0000 + g }),
        (0u64..8, any::<u16>()).prop_map(|(g, tac)| NasMsg::TrackingAreaUpdateRequest { guti: 0xD00D_0000 + g, tac }),
        (0u64..8).prop_map(|g| NasMsg::ServiceRequest { guti: 0xD00D_0000 + g }),
        // MME-originated NAS arriving inbound: a protocol error the
        // dispatcher must consume without effect.
        any::<u8>().prop_map(|cause| NasMsg::NetworkDetachRequest { cause }),
    ]
}

/// Inbound S1AP PDUs over the same tiny space, NAS-bearing ones built
/// from [`small_nas`] with optional truncation and bit flips.
fn mangled_nas() -> impl Strategy<Value = Vec<u8>> {
    (small_nas(), any::<u16>(), proptest::option::of((any::<usize>(), 0u8..8))).prop_map(|(msg, cut, flip)| {
        let mut bytes = msg.encode();
        if let Some((pos, bit)) = flip {
            if !bytes.is_empty() {
                let i = pos % bytes.len();
                bytes[i] ^= 1 << bit;
            }
        }
        let keep = (cut as usize) % (bytes.len() + 1);
        // Truncate half the time, keep intact otherwise.
        if keep.is_multiple_of(2) {
            bytes.truncate(keep);
        }
        bytes
    })
}

fn fuzz_pdu() -> impl Strategy<Value = S1apPdu> {
    prop_oneof![
        (0u32..4, mangled_nas())
            .prop_map(|(enb_ue_id, nas)| { S1apPdu::InitialUeMessage { enb_ue_id, ecgi: 0x100, tac: 1, nas } }),
        (0u32..4, 0u32..4, mangled_nas())
            .prop_map(|(enb_ue_id, mme_ue_id, nas)| { S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas } }),
        (0u32..4, 0u32..4, any::<u32>(), any::<u32>()).prop_map(|(enb_ue_id, mme_ue_id, enb_teid, enb_ip)| {
            S1apPdu::InitialContextSetupResponse { enb_ue_id, mme_ue_id, enb_teid, enb_ip }
        }),
        (0u32..4, 0u32..4, any::<u32>(), any::<u32>()).prop_map(|(enb_ue_id, mme_ue_id, new_enb_teid, new_enb_ip)| {
            S1apPdu::PathSwitchRequest { enb_ue_id, mme_ue_id, new_enb_teid, new_enb_ip, ecgi: 0x200 }
        }),
        (0u32..4, 0u32..4).prop_map(|(enb_ue_id, mme_ue_id)| {
            S1apPdu::HandoverRequired { enb_ue_id, mme_ue_id, target_ecgi: 0x300 }
        }),
        (0u32..4, any::<u32>(), any::<u32>()).prop_map(|(mme_ue_id, new_enb_teid, new_enb_ip)| {
            S1apPdu::HandoverRequestAck { mme_ue_id, new_enb_teid, new_enb_ip }
        }),
        (0u32..4, 0u32..4)
            .prop_map(|(enb_ue_id, mme_ue_id)| { S1apPdu::UeContextReleaseComplete { enb_ue_id, mme_ue_id } }),
        (0u32..4, 0u32..4, any::<u8>()).prop_map(|(enb_ue_id, mme_ue_id, cause)| {
            S1apPdu::UeContextReleaseRequest { enb_ue_id, mme_ue_id, cause }
        }),
        // MME-originated paging arriving inbound: unroutable, must be
        // discarded cleanly.
        (0u32..4, 0u64..8).prop_map(|(mme_ue_id, g)| S1apPdu::Paging { mme_ue_id, guti: 0xD00D_0000 + g }),
    ]
}

proptest! {
    #[test]
    fn procedure_dispatcher_total_on_arbitrary_pdu_sequences(
        pdus in proptest::collection::vec(fuzz_pdu(), 0..60),
        expire_at in proptest::option::of(0usize..60),
        // Network-originated injections riding the same clock: a page
        // and a forced detach for a small-space IMSI at random points.
        page_at in proptest::option::of((0usize..60, 1u64..5)),
        net_detach_at in proptest::option::of((0usize..60, 1u64..5)),
    ) {
        let mut cp = fuzz_control_plane();
        let assert_identities = |cp: &pepc::ctrl::ControlPlane| {
            let m = cp.metrics();
            assert!(m.signaling_conservation_holds(cp.mailbox_backlog()));
            assert!(m.procedure_accounting_holds(cp.procedures_in_flight()));
            assert!(m.paging_accounting_holds(cp.paging_in_flight()));
        };
        for (i, pdu) in pdus.iter().enumerate() {
            cp.note_tick(i as u64);
            let _ = cp.take_pending_tx();
            if let Some((at, imsi)) = page_at {
                if at == i {
                    let _ = cp.page(imsi);
                    assert_identities(&cp);
                }
            }
            if let Some((at, imsi)) = net_detach_at {
                if at == i {
                    let _ = cp.network_detach(imsi);
                    assert_identities(&cp);
                }
            }
            let out = cp.handle_s1ap(pdu);
            // One delivery can at most answer the message itself plus a
            // full mailbox drained by it.
            prop_assert!(
                out.len() <= pepc::procedure::MAILBOX_CAP + 1,
                "unbounded emission: {} PDUs from one message",
                out.len()
            );
            assert_identities(&cp);
            if expire_at == Some(i) {
                // Expiry must be one-shot safe: a machine the stale scan
                // selected can be gone by the time it is retired (an
                // earlier expiry's rollback compensation removed it).
                cp.expire_procedures(i as u64 + 100, 1);
                assert_identities(&cp);
            }
        }
        // Supervision always converges: after expiry nothing is in
        // flight, parked, or unaccounted — pages included.
        cp.expire_procedures(1_000_000, 1);
        prop_assert_eq!(cp.procedures_in_flight(), 0);
        prop_assert_eq!(cp.mailbox_backlog(), 0);
        prop_assert_eq!(cp.paging_in_flight(), 0);
        let m = cp.metrics();
        prop_assert!(m.signaling_conservation_holds(0));
        prop_assert!(m.procedure_accounting_holds(0));
        prop_assert!(m.paging_accounting_holds(0));
        // Sessions stay within the provisioned population.
        prop_assert!(cp.user_count() <= 4);
    }

    #[test]
    fn procedure_machine_policy_is_total(
        state_idx in 0usize..7,
        pdu in fuzz_pdu(),
    ) {
        use pepc::procedure::{ProcState, UeMachine};
        // Every reachable machine state must classify every routable
        // message without panicking — the policy table is total.
        let states = [
            ProcState::Idle,
            ProcState::AttachWaitAuth { imsi: 1, xres: 9, ecgi: 1, mme_ue_id: 1 },
            ProcState::AttachWaitSmc { imsi: 1, ecgi: 1, mme_ue_id: 1 },
            ProcState::AttachWaitIcs { imsi: 1, mme_ue_id: 1 },
            ProcState::AttachWaitComplete { imsi: 1, mme_ue_id: 1 },
            ProcState::HandoverWaitAck { imsi: 1, source_enb_ue_id: 2, mme_ue_id: 1 },
            ProcState::PagingWait { imsi: 1, mme_ue_id: 1, retries: 0, next_retx: 2 },
        ];
        let mut m = UeMachine::new(1, 0);
        m.enb_ue_id = 2;
        m.state = states[state_idx];
        // Re-derive the routed message the dispatcher would build, if
        // any, and classify it.
        use pepc::procedure::SigMsg;
        let msg = match &pdu {
            S1apPdu::InitialUeMessage { enb_ue_id, ecgi, tac, nas } => match NasMsg::decode(nas) {
                Ok(NasMsg::AttachRequest { imsi, .. }) => {
                    Some(SigMsg::AttachStart { enb_ue_id: *enb_ue_id, ecgi: *ecgi, tac: *tac, imsi })
                }
                Ok(NasMsg::ServiceRequest { guti }) => {
                    Some(SigMsg::ServiceStart { enb_ue_id: *enb_ue_id, ecgi: *ecgi, guti })
                }
                _ => None,
            },
            S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas } => NasMsg::decode(nas)
                .ok()
                .map(|msg| SigMsg::Nas { enb_ue_id: *enb_ue_id, mme_ue_id: *mme_ue_id, msg }),
            S1apPdu::InitialContextSetupResponse { enb_ue_id, mme_ue_id, enb_teid, enb_ip } => {
                Some(SigMsg::IcsRsp {
                    enb_ue_id: *enb_ue_id,
                    mme_ue_id: *mme_ue_id,
                    enb_teid: *enb_teid,
                    enb_ip: *enb_ip,
                })
            }
            S1apPdu::UeContextReleaseRequest { enb_ue_id, mme_ue_id, cause } => {
                Some(SigMsg::ReleaseReq { enb_ue_id: *enb_ue_id, mme_ue_id: *mme_ue_id, cause: *cause })
            }
            _ => None,
        };
        if let Some(msg) = msg {
            let _ = m.dispose(&msg); // any Disposition is fine; panic is the bug
        }
    }
}

// ---------------------------------------------------------------------------
// Idle-mode downlink buffer (PR 10, DESIGN.md §17)
// ---------------------------------------------------------------------------

/// One step of the idle-buffer lifecycle exercised below.
#[derive(Debug, Clone, Copy)]
enum IdleOp {
    /// Plain-IP downlink addressed to the UE.
    Downlink,
    /// GTP-U uplink from the (possibly suspended) UE.
    Uplink,
    /// Service Request resolution: re-insert, flushing the buffer.
    Wake,
    /// Paging expiry: discard the buffer, UE stays suspended.
    Expire,
    /// S1 release: park the UE outside the lookup tables.
    Sleep,
}

fn idle_op() -> impl Strategy<Value = IdleOp> {
    // Downlink is over-weighted so buffers actually fill.
    (0u8..8).prop_map(|k| match k {
        0 => IdleOp::Uplink,
        1 => IdleOp::Wake,
        2 => IdleOp::Expire,
        3 => IdleOp::Sleep,
        _ => IdleOp::Downlink,
    })
}

proptest! {
    /// The idle buffer is a bounded parking lot, not a leak: its
    /// occupancy never exceeds the configured cap, the data-path
    /// conservation identity holds after every operation, and every
    /// downlink packet received while suspended is exactly one of
    /// {still buffered, forwarded on wake, dropped}.
    #[test]
    fn idle_buffer_bounded_and_conserving(
        cap in 1usize..6,
        ops in proptest::collection::vec(idle_op(), 0..80),
    ) {
        use pepc::config::{IotConfig, TwoLevelConfig};
        use pepc::data::{DataPlane, DpUpdate};
        use pepc::state::{CounterState, QosPolicy, TunnelState};
        use pepc::PacketVerdict;
        use pepc_net::ipv4::IpProto;
        use pepc_net::udp::UDP_HDR_LEN;
        use pepc_net::IPV4_HDR_LEN;

        const GW_IP: u32 = 0x0AFE_0001;
        const ENB_IP: u32 = 0xC0A8_0001;
        const UE_IP: u32 = 0x0A00_0042;
        const TEID_UL: u32 = 0x1000;
        const TEID_DL: u32 = 0x2000;

        let mut dp = DataPlane::new(GW_IP, 64, TwoLevelConfig::default(), IotConfig::default());
        dp.set_idle_buffer_cap(cap);
        let mut ctrl = ControlState::new(404_010_000_000_001);
        ctrl.ue_ip = UE_IP;
        ctrl.qos = QosPolicy { qci: 9, ambr_kbps: 0, gbr_kbps: 0 };
        ctrl.tunnels = TunnelState { enb_teid: TEID_DL, enb_ip: ENB_IP, gw_teid: TEID_UL };
        let h = dp.slab().alloc(ctrl, CounterState::default());
        dp.apply_update(DpUpdate::Insert { gw_teid: TEID_UL, ue_ip: UE_IP, handle: h, active: true }, 0);

        let downlink = || {
            let payload = 32usize;
            let mut m = Mbuf::new();
            let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
            Ipv4Hdr::new(0x0808_0808, UE_IP, IpProto::Udp, UDP_HDR_LEN + payload)
                .emit(&mut hdr[..IPV4_HDR_LEN])
                .unwrap();
            UdpHdr::new(443, 40_000, payload).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
            m.extend(&hdr);
            m.extend(&vec![0xAB; payload]);
            m
        };
        let uplink = || {
            let payload = 16usize;
            let mut m = Mbuf::new();
            let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
            Ipv4Hdr::new(UE_IP, 0x0808_0808, IpProto::Udp, UDP_HDR_LEN + payload)
                .emit(&mut hdr[..IPV4_HDR_LEN])
                .unwrap();
            UdpHdr::new(40_000, 53, payload).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
            m.extend(&hdr);
            m.extend(&vec![0xCD; payload]);
            encap_gtpu(&mut m, ENB_IP, GW_IP, TEID_UL).unwrap();
            m
        };

        // Shadow model: what the buffer must contain and where every
        // suspended-downlink packet must have ended up.
        let mut suspended = false;
        let mut model_buffered = 0u64;
        let mut model_wake_flushed = 0u64;
        let mut model_overflow = 0u64;
        let mut model_expired = 0u64;
        let mut now = 0u64;
        for op in ops {
            now += 1;
            match op {
                IdleOp::Downlink => {
                    let v = dp.process(downlink(), now);
                    if suspended {
                        if model_buffered < cap as u64 {
                            model_buffered += 1;
                            prop_assert!(matches!(v, PacketVerdict::Buffered));
                        } else {
                            model_overflow += 1;
                            prop_assert!(matches!(v, PacketVerdict::Drop(_)));
                        }
                    } else {
                        prop_assert!(matches!(v, PacketVerdict::Forward(_)));
                    }
                }
                IdleOp::Uplink => {
                    let v = dp.process(uplink(), now);
                    if suspended {
                        // Suspended uplink is a protocol error: dropped,
                        // never a wake.
                        prop_assert!(matches!(v, PacketVerdict::Drop(_)));
                    } else {
                        prop_assert!(matches!(v, PacketVerdict::Forward(_)));
                    }
                }
                IdleOp::Wake if suspended => {
                    dp.apply_update(
                        DpUpdate::Insert { gw_teid: TEID_UL, ue_ip: UE_IP, handle: h, active: true },
                        now,
                    );
                    let woken = dp.take_woken();
                    prop_assert_eq!(woken.len() as u64, model_buffered);
                    model_wake_flushed += model_buffered;
                    model_buffered = 0;
                    suspended = false;
                }
                IdleOp::Expire if suspended => {
                    dp.apply_update(DpUpdate::DropIdleBuffer { ue_ip: UE_IP }, now);
                    model_expired += model_buffered;
                    model_buffered = 0;
                    prop_assert_eq!(dp.suspended_count(), 1); // still parked
                }
                IdleOp::Sleep if !suspended => {
                    dp.apply_update(DpUpdate::Suspend { gw_teid: TEID_UL, ue_ip: UE_IP, imsi: 1 }, now);
                    suspended = true;
                }
                // Wake while awake / Expire or Sleep in the wrong phase
                // are no-ops for the model and skipped by the driver.
                IdleOp::Wake | IdleOp::Expire | IdleOp::Sleep => {}
            }
            let m = dp.metrics();
            // Occupancy is bounded by the cap at every step, never just
            // at the end.
            prop_assert!(m.idle_buffered <= cap as u64, "buffer {} over cap {}", m.idle_buffered, cap);
            prop_assert_eq!(m.idle_buffered, model_buffered);
            // Exact disposition of every suspended-downlink packet.
            prop_assert_eq!(m.forwarded_on_wake, model_wake_flushed);
            prop_assert_eq!(m.drop_idle_overflow, model_overflow);
            prop_assert_eq!(m.drop_idle_expired, model_expired);
            // Data conservation: rx == forwarded + drops + parked.
            prop_assert!(m.conservation_holds(), "conservation broken: {m:?}");
        }
        // Drain: waking at the end leaves nothing parked and conserves.
        if suspended {
            dp.apply_update(
                DpUpdate::Insert { gw_teid: TEID_UL, ue_ip: UE_IP, handle: h, active: true },
                now + 1,
            );
            prop_assert_eq!(dp.take_woken().len() as u64, model_buffered);
        }
        let m = dp.metrics();
        prop_assert_eq!(m.idle_buffered, 0);
        prop_assert_eq!(dp.suspended_count(), 0);
        prop_assert!(m.conservation_holds());
    }
}

// ---------------------------------------------------------------------------
// Branchless/SIMD classifier vs the reference parser chain
// ---------------------------------------------------------------------------

/// Emitted wire images the classifier corpus perturbs: a valid GTP-U
/// uplink, a plain IPv4+UDP downlink, an IPv4+TCP flow, an
/// Ethernet-framed IPv4 packet (not IP-at-offset-0, so Malformed), and
/// a GTP-shaped-but-short frame (the 20..28-byte quirk window).
fn classifier_corpus() -> Vec<Vec<u8>> {
    use pepc_net::ipv4::IpProto;
    use pepc_net::tcp::TCP_HDR_LEN;
    use pepc_net::udp::UDP_HDR_LEN;
    use pepc_net::IPV4_HDR_LEN;

    let ipv4_udp = |src: u32, dst: u32, payload: usize| -> Vec<u8> {
        let mut b = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN + payload];
        Ipv4Hdr::new(src, dst, IpProto::Udp, UDP_HDR_LEN + payload).emit(&mut b[..IPV4_HDR_LEN]).unwrap();
        UdpHdr::new(40_000, 443, payload).emit(&mut b[IPV4_HDR_LEN..]).unwrap();
        b
    };

    let mut corpus = Vec::new();
    // Valid GTP-U uplink.
    let mut m = Mbuf::from_payload(&ipv4_udp(0x0A00_0001, 0x0808_0808, 32));
    encap_gtpu(&mut m, 0xC0A8_0001, 0x0AFE_0001, 0xDEAD_BEEF).unwrap();
    corpus.push(m.data().to_vec());
    // Plain IPv4 + UDP downlink.
    corpus.push(ipv4_udp(0x0808_0808, 0x0A00_0001, 24));
    // IPv4 + TCP.
    let mut tcp = vec![0u8; IPV4_HDR_LEN + TCP_HDR_LEN];
    Ipv4Hdr::new(0x0A00_0002, 0x0808_0404, IpProto::Tcp, TCP_HDR_LEN).emit(&mut tcp[..IPV4_HDR_LEN]).unwrap();
    TcpHdr {
        src_port: 40_001,
        dst_port: 80,
        seq: 7,
        ack: 9,
        data_offset: TCP_HDR_LEN,
        flags: pepc_net::tcp::flags::ACK,
        window: 512,
    }
    .emit(&mut tcp[IPV4_HDR_LEN..])
    .unwrap();
    corpus.push(tcp);
    // Ethernet-framed IPv4 (classifier sees non-0x45 at offset 0).
    let mut eth = vec![0u8; 14];
    eth[12] = 0x08; // ethertype 0x0800
    eth.extend_from_slice(&ipv4_udp(0x0808_0808, 0x0A00_0003, 16));
    corpus.push(eth);
    // GTP-shaped start but cut inside the 20..28 quirk window.
    let mut quirk = corpus[0].clone();
    quirk.truncate(24);
    corpus.push(quirk);
    corpus
}

fn assert_classify_agree(bytes: &[u8], what: &str) {
    let fast = pepc_net::classify_fast(bytes);
    let reference = pepc_net::classify_reference(bytes);
    assert_eq!(fast, reference, "{what}: fast != reference on {bytes:02x?}");
}

/// Exhaustive (deterministic) sweep: the branchless/SIMD classifier must
/// agree with the reference parser chain on every corpus packet, every
/// truncation of it, and every single-bit corruption — and never panic.
#[test]
fn classifier_agrees_on_every_truncation_and_bit_flip() {
    for (i, pkt) in classifier_corpus().iter().enumerate() {
        assert_classify_agree(pkt, &format!("corpus[{i}]"));
        for cut in 0..=pkt.len() {
            assert_classify_agree(&pkt[..cut], &format!("corpus[{i}] cut at {cut}"));
        }
        for byte in 0..pkt.len() {
            for bit in 0..8 {
                let mut flipped = pkt.clone();
                flipped[byte] ^= 1 << bit;
                assert_classify_agree(&flipped, &format!("corpus[{i}] flip {byte}.{bit}"));
            }
        }
    }
}

proptest! {
    #[test]
    fn classifier_agrees_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(pepc_net::classify_fast(&bytes), pepc_net::classify_reference(&bytes));
    }

    #[test]
    fn classifier_agrees_on_corrupted_corpus(
        pick in 0usize..5,
        cut in any::<usize>(),
        flips in proptest::collection::vec((any::<usize>(), 0u8..8), 0..4),
    ) {
        // Truncate then scatter a few bit flips: multi-fault inputs the
        // exhaustive single-fault sweep cannot reach.
        let corpus = classifier_corpus();
        let mut bytes = corpus[pick % corpus.len()].clone();
        bytes.truncate(cut % (bytes.len() + 1));
        for (at, bit) in flips {
            if !bytes.is_empty() {
                let at = at % bytes.len();
                bytes[at] ^= 1 << bit;
            }
        }
        prop_assert_eq!(pepc_net::classify_fast(&bytes), pepc_net::classify_reference(&bytes));
    }
}

// ---------------------------------------------------------------------------
// Overload admission: the limiter's priority contract under arbitrary
// request sequences. Two properties the unit tests only check at fixed
// points: (1) shedding is monotone in priority — within one supervision
// tick the controller never sheds a higher class while admitting a
// strictly lower one, and `would_admit` is monotone in rank at every
// reachable state; (2) the extended conservation identity
// (rx == consumed + deduped + dropped + overflow + shed + backlog) stays
// exact after every delivery of a storm-shaped sequence with admission
// enabled, through mid-storm expiry and after final supervision.
// ---------------------------------------------------------------------------

/// Storm-shaped inbound traffic: mostly valid attach floods from a tiny
/// ECGI set (so per-eNodeB buckets actually starve), a TAU trickle, and
/// the full fuzz PDU space mixed in so mid-procedure and mangled
/// messages cross the admission path too.
fn storm_pdu() -> impl Strategy<Value = S1apPdu> {
    prop_oneof![
        (0u32..6, 1u64..5, 0x100u32..0x103).prop_map(|(enb_ue_id, imsi, ecgi)| S1apPdu::InitialUeMessage {
            enb_ue_id,
            ecgi,
            tac: 1,
            nas: NasMsg::AttachRequest { imsi, ue_capability: 0 }.encode(),
        }),
        (0u32..6, 0u64..8, 0x100u32..0x103).prop_map(|(enb_ue_id, guti, ecgi)| S1apPdu::InitialUeMessage {
            enb_ue_id,
            ecgi,
            tac: 7,
            nas: NasMsg::TrackingAreaUpdateRequest { guti: 0xD00D_0000 + guti, tac: 7 }.encode(),
        }),
        fuzz_pdu(),
    ]
}

proptest! {
    #[test]
    fn admission_never_sheds_higher_class_while_admitting_lower(
        rate in 0u32..3,
        burst in 0u32..6,
        ceiling in 0u32..6,
        reqs in proptest::collection::vec((0u8..3, 0u32..3, 0u64..12, any::<bool>()), 1..80),
    ) {
        use pepc::overload::{AdmissionControl, SigClass};
        let cfg = pepc::config::OverloadConfig {
            enabled: true,
            enb_rate_per_tick: rate,
            enb_burst: burst,
            max_in_flight: ceiling,
            backoff_ms: 10,
        };
        let mut ac = AdmissionControl::new(cfg);
        let mut tick = 0u64;
        // Lowest rank shed so far in the current tick (u8::MAX = none).
        let mut shed_rank_this_tick = u8::MAX;
        for &(class_idx, ecgi, in_flight, advance) in &reqs {
            if advance {
                tick += 1;
                shed_rank_this_tick = u8::MAX;
            }
            let class = [SigClass::Handover, SigClass::Attach, SigClass::Tau][class_idx as usize];

            // `would_admit` is monotone in rank at every reachable state:
            // if a class gets in, every higher-priority class must too.
            let probes: Vec<bool> = [SigClass::Handover, SigClass::Attach, SigClass::Tau]
                .iter()
                .map(|&c| ac.would_admit(c, ecgi, in_flight, tick))
                .collect();
            prop_assert!(!probes[2] || probes[1], "TAU admitted while attach shed (tick {tick})");
            prop_assert!(!probes[1] || probes[0], "attach admitted while handover shed (tick {tick})");

            // The probe is exactly the decision `admit` takes.
            let probe = ac.would_admit(class, ecgi, in_flight, tick);
            let admitted = ac.admit(class, ecgi, in_flight, tick);
            prop_assert_eq!(probe, admitted, "would_admit diverged from admit for {:?} at tick {}", class, tick);

            // Temporal monotonicity within the tick: once a class is
            // shed, nothing of strictly lower priority is admitted
            // until the supervision clock advances.
            if admitted {
                prop_assert!(
                    class.rank() <= shed_rank_this_tick,
                    "admitted {:?} (rank {}) after shedding rank {} in the same tick",
                    class, class.rank(), shed_rank_this_tick
                );
            } else {
                shed_rank_this_tick = shed_rank_this_tick.min(class.rank());
            }
        }
    }

    #[test]
    fn signaling_conservation_exact_mid_storm_and_after_expiry(
        pdus in proptest::collection::vec(storm_pdu(), 1..120),
        expire_at in proptest::option::of(0usize..120),
    ) {
        let mut cp = fuzz_control_plane();
        cp.set_overload(pepc::config::OverloadConfig {
            enabled: true,
            enb_rate_per_tick: 1,
            enb_burst: 2,
            max_in_flight: 3,
            backoff_ms: 7,
        });
        let mut shed_seen = 0u64;
        for (i, pdu) in pdus.iter().enumerate() {
            // Slow clock: several PDUs per supervision tick, so buckets
            // starve mid-tick and the limiter actually sheds.
            let tick = (i / 4) as u64;
            cp.note_tick(tick);
            let out = cp.handle_s1ap(pdu);
            prop_assert!(out.len() <= pepc::procedure::MAILBOX_CAP + 1);
            let m = cp.metrics();
            prop_assert!(
                m.signaling_conservation_holds(cp.mailbox_backlog()),
                "conservation broke mid-storm at delivery {i}"
            );
            prop_assert!(m.procedure_accounting_holds(cp.procedures_in_flight()));
            // Shed counters are monotone: admission only ever adds.
            prop_assert!(m.sig_shed_total() >= shed_seen);
            shed_seen = m.sig_shed_total();
            if expire_at == Some(i) {
                cp.expire_procedures(tick + 100, 1);
                let m = cp.metrics();
                prop_assert!(
                    m.signaling_conservation_holds(cp.mailbox_backlog()),
                    "conservation broke after mid-storm expiry at delivery {i}"
                );
                prop_assert!(m.procedure_accounting_holds(cp.procedures_in_flight()));
            }
        }
        // After the storm: supervision converges and every inbound PDU is
        // accounted to exactly one bucket of the identity.
        cp.expire_procedures(1_000_000, 1);
        prop_assert_eq!(cp.procedures_in_flight(), 0);
        prop_assert_eq!(cp.mailbox_backlog(), 0);
        let m = cp.metrics();
        prop_assert!(m.signaling_conservation_holds(0));
        prop_assert!(m.procedure_accounting_holds(0));
        prop_assert!(cp.user_count() <= 4);
    }
}
