// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! Differential test: the software-RSS sharded data path must be
//! observationally identical to the single pipeline — same per-packet
//! verdicts (in input order), same per-user counters, same drop
//! taxonomy, same IoT charging and table churn — for any shard count,
//! on seeded mixed workloads. Steering must also be stable: the same
//! key lands on the same shard in every burst.
//!
//! The population and packet mix mirror `tests/burst_equivalence.rs`
//! (which pins burst == scalar), so the two differentials compose:
//! sharded == single burst == scalar.

use pepc::config::{IotConfig, TwoLevelConfig};
use pepc::data::{DataPlane, DpUpdate, PacketVerdict};
use pepc::pcef::PcefAction;
use pepc::state::{ControlState, CounterState, QosPolicy, TunnelState};
use pepc::{ShardedDataPath, UeHandle, UeSlab};
use pepc_net::bpf::BpfProgram;
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};
use rand::{Rng, SeedableRng};

const GW_IP: u32 = 0x0AFE_0001;
const ENB_IP: u32 = 0xC0A8_0001;
const UE_IP_BASE: u32 = 0x0A00_0001;
const TEID_BASE: u32 = 0x1000;
const IOT_TEID_BASE: u32 = 0xF000_0000;
const IOT_IP_BASE: u32 = 0x6400_0000;
const USERS: u32 = 24;

#[derive(Clone, Copy, PartialEq)]
enum Flavour {
    Plain,
    RateLimited,
    Gated,
}

fn flavour(u: u32) -> Flavour {
    match u % 3 {
        0 => Flavour::Plain,
        1 => Flavour::RateLimited,
        _ => Flavour::Gated,
    }
}

fn iot() -> IotConfig {
    IotConfig { enabled: true, teid_base: IOT_TEID_BASE, ip_base: IOT_IP_BASE, pool_size: 64 }
}

fn rule() -> DpUpdate {
    DpUpdate::InstallRule {
        id: 1,
        program: BpfProgram::match_dst_port(53, 1),
        action: PcefAction { qci: 9, rate_kbps: 0, gate_closed: true },
    }
}

fn user_ctrl(u: u32) -> ControlState {
    let mut ctrl = ControlState::new(404_01_0000000000 + u64::from(u));
    ctrl.ue_ip = UE_IP_BASE + u;
    let ambr = if flavour(u) == Flavour::RateLimited { 8 } else { 0 };
    ctrl.qos = QosPolicy { qci: 9, ambr_kbps: ambr, gbr_kbps: 0 };
    ctrl.tunnels = TunnelState { enb_teid: 0xE000 + u, enb_ip: ENB_IP, gw_teid: TEID_BASE + u };
    if flavour(u) == Flavour::Gated {
        ctrl.pcef_rules.push(1);
    }
    ctrl
}

fn insert(u: u32, handle: UeHandle) -> DpUpdate {
    // Half the users start demoted so bursts exercise promotions.
    DpUpdate::Insert { gw_teid: TEID_BASE + u, ue_ip: UE_IP_BASE + u, handle, active: u.is_multiple_of(2) }
}

fn populate(slab: &UeSlab) -> Vec<UeHandle> {
    (0..USERS).map(|u| slab.alloc(user_ctrl(u), CounterState::default())).collect()
}

fn counters_of(slab: &UeSlab, h: UeHandle) -> CounterState {
    slab.resolve(h).expect("live handle").counters()
}

fn build_single() -> (DataPlane, Vec<UeHandle>) {
    let mut dp = DataPlane::new(GW_IP, 256, TwoLevelConfig::default(), iot());
    dp.apply_update(rule(), 0);
    let handles = populate(dp.slab());
    for (u, h) in handles.iter().enumerate() {
        dp.apply_update(insert(u as u32, *h), 0);
    }
    (dp, handles)
}

fn build_sharded(shards: usize) -> (ShardedDataPath, Vec<UeHandle>) {
    let mut p = ShardedDataPath::new(GW_IP, 256, TwoLevelConfig::default(), iot(), shards);
    p.apply_update(rule(), 0);
    let handles = populate(p.slab());
    for (u, h) in handles.iter().enumerate() {
        p.apply_update(insert(u as u32, *h), 0);
    }
    (p, handles)
}

fn inner_udp(src: u32, dst: u32, dst_port: u16, payload_len: usize) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(src, dst, IpProto::Udp, UDP_HDR_LEN + payload_len).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(40_000, dst_port, payload_len).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    m.extend(&hdr);
    m.extend(&vec![0xAB; payload_len]);
    m
}

fn uplink(teid: u32, src: u32, dst_port: u16) -> Mbuf {
    let mut m = inner_udp(src, 0x0808_0808, dst_port, 64);
    encap_gtpu(&mut m, ENB_IP, GW_IP, teid).unwrap();
    m
}

/// One seeded packet of the mixed workload (same mix as
/// `burst_equivalence.rs`): known uplink/downlink with same-user runs,
/// gated ports, IoT pool, unknown keys, malformed frames.
fn next_packet(rng: &mut rand::rngs::StdRng, sticky_user: &mut u32) -> Mbuf {
    if rng.gen_range(0..2) == 0 {
        *sticky_user = rng.gen_range(0..USERS);
    }
    let u = *sticky_user;
    let dst_port = if rng.gen_range(0..3) == 0 { 53 } else { 443 };
    match rng.gen_range(0..10) {
        0..=3 => uplink(TEID_BASE + u, UE_IP_BASE + u, dst_port),
        4..=6 => inner_udp(0x0808_0808, UE_IP_BASE + u, dst_port, 48),
        7 => uplink(IOT_TEID_BASE + (u % 64), IOT_IP_BASE + (u % 64), dst_port),
        8 => inner_udp(0x0808_0808, IOT_IP_BASE + (u % 64), dst_port, 32),
        _ => {
            if rng.gen_range(0..2) == 0 {
                uplink(0x00DE_AD00 + u, UE_IP_BASE, dst_port)
            } else {
                Mbuf::from_payload(&[0xFF; 40])
            }
        }
    }
}

fn verdict_kind(v: &PacketVerdict) -> (bool, Option<pepc::data::DropReason>, usize) {
    match v {
        PacketVerdict::Forward(m) => (true, None, m.len()),
        PacketVerdict::Drop(r) => (false, Some(*r), 0),
        PacketVerdict::Buffered => (false, None, 0),
    }
}

#[test]
fn sharded_path_is_observationally_identical_to_single_pipeline() {
    for shards in [2usize, 4, 8] {
        for seed in [7u64, 42, 1234] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let (mut single, single_ctxs) = build_single();
            let (mut sharded, sharded_ctxs) = build_sharded(shards);

            let mut sticky = 0u32;
            let mut now = 1_000u64;
            for _round in 0..200 {
                let burst_size = rng.gen_range(1..49);
                now += rng.gen_range(0..2_000_000);
                let packets: Vec<Mbuf> = (0..burst_size).map(|_| next_packet(&mut rng, &mut sticky)).collect();
                let copies: Vec<Mbuf> = packets.iter().map(|m| Mbuf::from_payload(m.data())).collect();

                let mut sharded_in = packets;
                let sharded_out = sharded.process_burst(&mut sharded_in, now);
                let mut single_in = copies;
                let single_out = single.process_burst(&mut single_in, now);

                assert_eq!(sharded_out.len(), single_out.len());
                for (k, (a, b)) in sharded_out.iter().zip(&single_out).enumerate() {
                    assert_eq!(
                        verdict_kind(a),
                        verdict_kind(b),
                        "{shards} shards seed {seed} packet {k}: verdict diverged"
                    );
                }
            }

            // Aggregate metrics equal the single pipeline's: same rx,
            // forwarded, full drop taxonomy, update count.
            let agg = sharded.aggregate_metrics();
            assert_eq!(agg, single.metrics(), "{shards} shards seed {seed}: drop taxonomy diverged");
            assert!(agg.conservation_holds(), "{shards} shards seed {seed}: rx != forwarded + drops");
            assert_eq!(
                sharded.iot_totals(),
                (single.iot_packets, single.iot_bytes),
                "{shards} shards seed {seed}: IoT charging diverged"
            );
            assert_eq!(
                sharded.table_stats(),
                single.table_stats(),
                "{shards} shards seed {seed}: table churn diverged"
            );
            assert_eq!(
                sharded.pipeline_latency().count(),
                single.pipeline_latency().count(),
                "{shards} shards seed {seed}: histogram population diverged"
            );
            for (u, (a, b)) in sharded_ctxs.iter().zip(&single_ctxs).enumerate() {
                assert_eq!(
                    counters_of(sharded.slab(), *a),
                    counters_of(single.slab(), *b),
                    "{shards} shards seed {seed}: user {u} counters diverged"
                );
            }
        }
    }
}

#[test]
fn steering_is_stable_and_respects_the_partition() {
    let (mut sharded, _ctxs) = build_sharded(4);
    // Record every key's first steering decision, then re-steer the
    // same keys many times: the decision never changes, and both
    // directions of a known user agree with the TEID owner hash.
    for u in 0..USERS {
        let owner = sharded.owner_of_teid(TEID_BASE + u);
        for _ in 0..3 {
            assert_eq!(sharded.shard_for(&uplink(TEID_BASE + u, UE_IP_BASE + u, 443)), owner, "user {u} uplink");
            assert_eq!(
                sharded.shard_for(&inner_udp(0x0808_0808, UE_IP_BASE + u, 443, 48)),
                owner,
                "user {u} downlink follows the owner map"
            );
        }
    }
    // Unknown keys: stable too (pure hash of the key).
    let unknown_ul = uplink(0x00DE_AD77, UE_IP_BASE, 443);
    let unknown_dl = inner_udp(0x0808_0808, 0x0BAD_0001, 443, 48);
    let s_ul = sharded.shard_for(&unknown_ul);
    let s_dl = sharded.shard_for(&unknown_dl);
    for _ in 0..3 {
        assert_eq!(sharded.shard_for(&unknown_ul), s_ul);
        assert_eq!(sharded.shard_for(&unknown_dl), s_dl);
    }
    // Processing traffic does not perturb steering decisions.
    let mut burst: Vec<Mbuf> = (0..USERS).map(|u| uplink(TEID_BASE + u, UE_IP_BASE + u, 443)).collect();
    sharded.process_burst(&mut burst, 10);
    for u in 0..USERS {
        assert_eq!(
            sharded.shard_for(&uplink(TEID_BASE + u, UE_IP_BASE + u, 443)),
            sharded.owner_of_teid(TEID_BASE + u),
            "user {u} after traffic"
        );
    }
}

#[test]
fn shard_count_one_equals_the_single_pipeline_exactly() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let (mut single, single_ctxs) = build_single();
    let (mut sharded, sharded_ctxs) = build_sharded(1);
    let mut sticky = 0u32;
    for i in 0..300u64 {
        let now = 1_000 + i * 10_000;
        let m = next_packet(&mut rng, &mut sticky);
        let copy = Mbuf::from_payload(m.data());
        let a = sharded.process_burst(&mut vec![m], now);
        let b = single.process_burst(&mut vec![copy], now);
        assert_eq!(verdict_kind(&a[0]), verdict_kind(&b[0]), "packet {i}");
    }
    assert_eq!(sharded.aggregate_metrics(), single.metrics());
    for (x, y) in sharded_ctxs.iter().zip(&single_ctxs) {
        assert_eq!(counters_of(sharded.slab(), *x), counters_of(single.slab(), *y));
    }
}
