//! Table 1 conformance: the state taxonomy and the single-writer
//! discipline PEPC's refactoring guarantees.
//!
//! | State group            | PEPC control thread | PEPC data thread |
//! |------------------------|---------------------|------------------|
//! | User location          | w+r                 | r                |
//! | User id                | w+r                 | r                |
//! | QoS/policy state       | w+r                 | r                |
//! | Data tunnel state      | w+r                 | r                |
//! | Control tunnel state   | — (eliminated)      | —                |
//! | Bandwidth counters     | r                   | w+r              |

use pepc::ctrl::{Allocator, ControlPlane, CtrlEvent};
use pepc::state::{ControlState, CtrlView, UeContext};
use pepc::table::{PepcStore, StateStore};
use std::sync::Arc;

fn cp() -> ControlPlane {
    ControlPlane::new(
        0x0AFE_0001,
        1,
        Allocator { teid_base: 0x1000, ue_ip_base: 0x0A000001, guti_base: 0xD000, mme_ue_id_base: 1 },
        None,
    )
}

#[test]
fn control_thread_writes_every_per_event_group() {
    let mut c = cp();
    c.apply_event(CtrlEvent::Attach { imsi: 7 });
    let ctx = c.context_of(7).unwrap();
    {
        let s = ctx.ctrl_read();
        // User id group (row 2): written at attach.
        assert_eq!(s.imsi, 7);
        assert_ne!(s.guti, 0);
        assert_ne!(s.ue_ip, 0);
        // Data tunnel group (row 5): gateway side written at attach.
        assert_ne!(s.tunnels.gw_teid, 0);
    }
    // Location group (row 1) + tunnel rewrite: written on mobility.
    // (`context_of` lends a handle-resolved borrow of the plane, so it is
    // re-fetched after each mutating event.)
    c.apply_event(CtrlEvent::S1Handover { imsi: 7, new_enb_teid: 0xE1, new_enb_ip: 0xC0A80001 });
    let ctx = c.context_of(7).unwrap();
    assert_eq!(ctx.ctrl_read().tunnels.enb_teid, 0xE1);
    // QoS/policy group (row 3): written on modify-bearer.
    c.apply_event(CtrlEvent::ModifyBearer { imsi: 7, ambr_kbps: 1234 });
    let ctx = c.context_of(7).unwrap();
    assert_eq!(ctx.ctrl_read().qos.ambr_kbps, 1234);
    // Every control write republished the data path's seqlock view.
    assert_eq!(ctx.ctrl_view(), CtrlView::project(&ctx.ctrl_read()));
}

#[test]
fn data_thread_writes_only_counters_and_reads_control() {
    // The data plane's whole interaction with state goes through
    // `data_path_visit`, whose signature only *lends* the CtrlView
    // projection immutably and only mutates CounterState — the
    // discipline is in the API, not a convention.
    let store = PepcStore::new(4);
    store.insert(1, ControlState::new(1));
    let before = store.get(1).unwrap().ctrl_read().clone();
    store.data_path_visit(1, true, 100, 42, &mut |v: &CtrlView| {
        // read access works
        v.qci == 9
    });
    let after = store.get(1).unwrap().ctrl_read().clone();
    assert_eq!(before, after, "data path cannot mutate control state");
    let counters = store.read_counters(1).unwrap();
    assert_eq!(counters.uplink_packets, 1, "data path wrote its own half");
    assert_eq!(counters.last_activity_ns, 42);
}

#[test]
fn control_thread_reads_counters_without_writing() {
    let mut c = cp();
    c.apply_event(CtrlEvent::Attach { imsi: 7 });
    let ctx = c.context_of(7).unwrap();
    ctx.update_counters(|cnt| cnt.uplink_bytes = 555); // the data thread's write
    let snap = c.counters_of(7).unwrap();
    assert_eq!(snap.uplink_bytes, 555);
    // Snapshot is a copy; mutating it cannot touch the live state.
    assert_eq!(ctx.counters().uplink_bytes, 555);
}

#[test]
fn no_per_user_control_tunnel_state_exists() {
    // Row 4 of Table 1: PEPC eliminates per-user control tunnels (S11/S5
    // GTP-C) entirely — there is no field for them. This is a compile-
    // time property; assert the struct stays that way by exhaustively
    // destructuring TunnelState.
    let pepc::state::TunnelState { enb_teid: _, enb_ip: _, gw_teid: _ } = pepc::state::TunnelState::default();
    // (adding a control-tunnel field would break this pattern)
}

#[test]
fn per_event_vs_per_packet_update_frequencies() {
    // Control state version only changes on signaling events; counters
    // change per packet. The view cell's seqlock version is the literal
    // witness: counter publishes never bump it.
    let mut c = cp();
    c.apply_event(CtrlEvent::Attach { imsi: 7 });
    let ctx = c.context_of(7).unwrap();
    let ctrl_before = ctx.ctrl_read().clone();
    let view_version_before = ctx.view_version();
    // 100 "packets" worth of counter writes, as the data thread does them:
    // snapshot, mutate locally, publish.
    for i in 0..100 {
        let mut cnt = ctx.counters();
        cnt.uplink_packets += 1;
        cnt.last_activity_ns = i;
        ctx.publish_counters(cnt);
    }
    assert_eq!(*ctx.ctrl_read(), ctrl_before, "per-packet work never touches per-event state");
    assert_eq!(ctx.view_version(), view_version_before, "per-packet work never republishes the view");
    assert_eq!(ctx.counters().uplink_packets, 100);
}

#[test]
fn writers_on_different_halves_do_not_exclude_each_other() {
    // Regression guard for the fine-grained claim: a held control write
    // lock must not block counter publishes (disjoint cells — the counter
    // cell has no lock at all).
    let ctx: Arc<UeContext> = UeContext::new(ControlState::new(1));
    let ctrl_guard = ctx.ctrl_write();
    let t = {
        let ctx = Arc::clone(&ctx);
        std::thread::spawn(move || {
            ctx.update_counters(|c| c.uplink_packets += 1); // must not deadlock
        })
    };
    t.join().unwrap();
    drop(ctrl_guard);
    assert_eq!(ctx.counters().uplink_packets, 1);
}

#[test]
fn frozen_view_falls_back_to_the_control_lock() {
    // Migration freeze holds the view cell's sequence odd; optimistic
    // readers exhaust their bounded retries and project from the
    // authoritative control lock instead — reads never block or tear.
    let ctx: Arc<UeContext> = UeContext::new(ControlState::new(9));
    let hold = ctx.freeze_view();
    assert!(ctx.view_frozen());
    let (view, retries) = ctx.ctrl_view_with_retries();
    assert_eq!(view, CtrlView::project(&ctx.ctrl_read()));
    assert!(retries > 0, "frozen cell must have forced the fallback path");
    drop(hold);
    assert!(!ctx.view_frozen());
    let (_, retries) = ctx.ctrl_view_with_retries();
    assert_eq!(retries, 0, "unfrozen cell reads optimistically again");
}
