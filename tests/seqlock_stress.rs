//! Torn-read stress for the single-writer seqlock protocol.
//!
//! Writers keep coupled invariants across the fields of each cell
//! (`enb_ip == enb_teid ^ K`, `uplink_bytes == uplink_packets * 100`, …)
//! so *any* torn read — a snapshot mixing two publishes — breaks an
//! equation a reader checks. Readers hammer the cells for the whole run;
//! one violated invariant fails the test.
//!
//! Three seeds run as separate test functions so the CI concurrency
//! matrix can select them individually.

use pepc::seqlock::READ_RETRY_LIMIT;
use pepc::state::{ControlState, CtrlView, UeContext};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TEID_IP_KEY: u32 = 0xDEAD_BEEF;
const DROP_KEY: u64 = 0x5555_AAAA_5555_AAAA;

fn run_duration() -> Duration {
    // Long enough to cross many scheduler timeslices in release; short
    // enough not to dominate a debug `cargo test`. CI's concurrency
    // matrix raises it via SEQLOCK_STRESS_MS for a longer soak.
    if let Ok(ms) = std::env::var("SEQLOCK_STRESS_MS") {
        if let Ok(ms) = ms.parse::<u64>() {
            return Duration::from_millis(ms);
        }
    }
    if cfg!(debug_assertions) {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(1000)
    }
}

fn check_view(v: &CtrlView) {
    assert_eq!(v.tunnels.enb_ip, v.tunnels.enb_teid ^ TEID_IP_KEY, "torn control view: teid/ip decoupled");
    assert_eq!(v.ambr_kbps, v.tunnels.enb_teid.wrapping_add(7), "torn control view: teid/ambr decoupled");
}

fn stress(seed: u64) {
    let ctx = UeContext::new(ControlState::new(seed));
    // Establish the invariants before any reader looks.
    {
        let mut g = ctx.ctrl_write();
        g.tunnels.enb_teid = 0;
        g.tunnels.enb_ip = TEID_IP_KEY;
        g.qos.ambr_kbps = 7;
    }
    ctx.update_counters(|c| {
        c.uplink_packets = 0;
        c.uplink_bytes = 0;
        c.qos_drops = DROP_KEY;
    });

    let stop = Arc::new(AtomicBool::new(false));
    let max_retries = Arc::new(AtomicU32::new(0));
    let mut handles = Vec::new();

    // Two control writers: they serialize on the control lock (each
    // publish happens under it), exercising back-to-back republishes.
    for w in 0..2u64 {
        let ctx = Arc::clone(&ctx);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut lcg = seed ^ (w << 32) | 1;
            let mut published = 0u64;
            while !stop.load(Ordering::Relaxed) {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let x = (lcg >> 24) as u32;
                {
                    let mut g = ctx.ctrl_write();
                    g.tunnels.enb_teid = x;
                    g.tunnels.enb_ip = x ^ TEID_IP_KEY;
                    g.qos.ambr_kbps = x.wrapping_add(7);
                }
                published += 1;
                if published.is_multiple_of(64) {
                    std::thread::yield_now(); // let readers run on 1 CPU
                }
            }
            published
        }));
    }

    // Exactly ONE counter writer: the counter cell is single-writer by
    // protocol (the data thread).
    let counter_writer = {
        let ctx = Arc::clone(&ctx);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                n += 1;
                let mut c = ctx.counters();
                c.uplink_packets = n;
                c.uplink_bytes = n * 100;
                c.qos_drops = n ^ DROP_KEY;
                ctx.publish_counters(c);
                if n.is_multiple_of(64) {
                    std::thread::yield_now();
                }
            }
            n
        })
    };

    // View readers: optimistic seqlock reads plus the bounded-retry
    // entry point the data plane actually uses.
    for _ in 0..2 {
        let ctx = Arc::clone(&ctx);
        let stop = Arc::clone(&stop);
        let max_retries = Arc::clone(&max_retries);
        handles.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (v, retries) = ctx.ctrl_view_with_retries();
                assert!(retries <= READ_RETRY_LIMIT, "retries are bounded by construction");
                max_retries.fetch_max(retries, Ordering::Relaxed);
                check_view(&v);
                reads += 1;
            }
            reads
        }));
    }

    // Counter reader: acquire/retry snapshots must never decouple the
    // checksummed fields.
    let counter_reader = {
        let ctx = Arc::clone(&ctx);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reads = 0u64;
            let mut last_n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let c = ctx.counters();
                assert_eq!(c.uplink_bytes, c.uplink_packets * 100, "torn counter read: bytes/packets decoupled");
                assert_eq!(c.qos_drops, c.uplink_packets ^ DROP_KEY, "torn counter read: checksum decoupled");
                assert!(c.uplink_packets >= last_n, "counter snapshots must be monotone (single writer)");
                last_n = c.uplink_packets;
                reads += 1;
            }
            reads
        })
    };

    std::thread::sleep(run_duration());
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        // Writers return publish counts, readers return read counts;
        // either being zero means a livelock (no progress).
        assert!(h.join().expect("stress thread") > 0, "every thread made progress");
    }
    let counted = counter_writer.join().expect("counter writer");
    let read_count = counter_reader.join().expect("counter reader");
    assert!(counted > 0 && read_count > 0, "counter threads made progress");

    // Final state is exactly the last publish — no lost updates.
    let c = ctx.counters();
    assert_eq!(c.uplink_packets, counted);
    assert_eq!(c.uplink_bytes, counted * 100);
    check_view(&ctx.ctrl_view());
    // And the published view always equals the authoritative projection.
    assert_eq!(ctx.ctrl_view(), CtrlView::project(&ctx.ctrl_read()));
}

#[test]
fn seqlock_stress_seed1() {
    stress(1);
}

#[test]
fn seqlock_stress_seed2() {
    stress(2);
}

#[test]
fn seqlock_stress_seed3() {
    stress(3);
}
