// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! Differential test: the burst data path must be observationally
//! identical to the scalar path — same per-packet verdicts, same
//! per-user counters, same drop taxonomy, same histogram populations,
//! same two-level table churn — on seeded mixed workloads.
//!
//! Two identically-configured [`DataPlane`]s process the same packet
//! stream: one packet at a time vs in random-size bursts, with matching
//! `now_ns` per burst so token-bucket arithmetic is deterministic.

use pepc::config::{IotConfig, TwoLevelConfig};
use pepc::data::{DataPlane, DpUpdate, DropReason, PacketVerdict};
use pepc::pcef::PcefAction;
use pepc::state::{ControlState, CounterState, QosPolicy, TunnelState};
use pepc::{UeHandle, UeSlab};
use pepc_net::bpf::BpfProgram;
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const GW_IP: u32 = 0x0AFE_0001;
const ENB_IP: u32 = 0xC0A8_0001;
const UE_IP_BASE: u32 = 0x0A00_0001;
const TEID_BASE: u32 = 0x1000;
const IOT_TEID_BASE: u32 = 0xF000_0000;
const IOT_IP_BASE: u32 = 0x6400_0000;
const USERS: u32 = 24;

/// Per-user flavour of the seeded population.
#[derive(Clone, Copy, PartialEq)]
enum Flavour {
    /// No PCEF rules, unlimited AMBR: the rule-less fast path.
    Plain,
    /// Tight AMBR, so some packets rate-drop.
    RateLimited,
    /// A gate-closed rule on DNS, so port-53 packets gate-drop.
    Gated,
}

fn flavour(u: u32) -> Flavour {
    match u % 3 {
        0 => Flavour::Plain,
        1 => Flavour::RateLimited,
        _ => Flavour::Gated,
    }
}

fn counters_of(slab: &UeSlab, h: UeHandle) -> CounterState {
    slab.resolve(h).expect("live handle").counters()
}

fn build_plane() -> (DataPlane, Vec<UeHandle>) {
    let iot = IotConfig { enabled: true, teid_base: IOT_TEID_BASE, ip_base: IOT_IP_BASE, pool_size: 64 };
    let mut dp = DataPlane::new(GW_IP, 256, TwoLevelConfig::default(), iot);
    dp.apply_update(
        DpUpdate::InstallRule {
            id: 1,
            program: BpfProgram::match_dst_port(53, 1),
            action: PcefAction { qci: 9, rate_kbps: 0, gate_closed: true },
        },
        0,
    );
    let mut handles = Vec::new();
    for u in 0..USERS {
        let mut ctrl = ControlState::new(404_01_0000000000 + u64::from(u));
        ctrl.ue_ip = UE_IP_BASE + u;
        let ambr = if flavour(u) == Flavour::RateLimited { 8 } else { 0 };
        ctrl.qos = QosPolicy { qci: 9, ambr_kbps: ambr, gbr_kbps: 0 };
        ctrl.tunnels = TunnelState { enb_teid: 0xE000 + u, enb_ip: ENB_IP, gw_teid: TEID_BASE + u };
        if flavour(u) == Flavour::Gated {
            ctrl.pcef_rules.push(1);
        }
        let handle = dp.slab().alloc(ctrl, CounterState::default());
        // Half the users start demoted so bursts exercise promotions.
        let active = u % 2 == 0;
        dp.apply_update(DpUpdate::Insert { gw_teid: TEID_BASE + u, ue_ip: UE_IP_BASE + u, handle, active }, 0);
        handles.push(handle);
    }
    (dp, handles)
}

fn inner_udp(src: u32, dst: u32, dst_port: u16, payload_len: usize) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(src, dst, IpProto::Udp, UDP_HDR_LEN + payload_len).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(40_000, dst_port, payload_len).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    m.extend(&hdr);
    m.extend(&vec![0xAB; payload_len]);
    m
}

fn uplink(teid: u32, src: u32, dst_port: u16) -> Mbuf {
    let mut m = inner_udp(src, 0x0808_0808, dst_port, 64);
    encap_gtpu(&mut m, ENB_IP, GW_IP, teid).unwrap();
    m
}

/// One seeded packet of the mixed workload: known uplink/downlink (with
/// same-user repeats so runs form), gated ports, IoT pool, unknown keys,
/// and malformed frames.
fn next_packet(rng: &mut rand::rngs::StdRng, sticky_user: &mut u32) -> Mbuf {
    // Re-use the previous user 50% of the time so same-user runs form
    // inside bursts (the case group coalescing optimizes).
    if rng.gen_range(0..2) == 0 {
        *sticky_user = rng.gen_range(0..USERS);
    }
    let u = *sticky_user;
    let dst_port = if rng.gen_range(0..3) == 0 { 53 } else { 443 };
    match rng.gen_range(0..10) {
        // Known uplink (the bulk).
        0..=3 => uplink(TEID_BASE + u, UE_IP_BASE + u, dst_port),
        // Known downlink.
        4..=6 => inner_udp(0x0808_0808, UE_IP_BASE + u, dst_port, 48),
        // IoT pool, both directions.
        7 => uplink(IOT_TEID_BASE + (u % 64), IOT_IP_BASE + (u % 64), dst_port),
        8 => inner_udp(0x0808_0808, IOT_IP_BASE + (u % 64), dst_port, 32),
        // Unknown key or malformed frame.
        _ => {
            if rng.gen_range(0..2) == 0 {
                uplink(0x00DE_AD00 + u, UE_IP_BASE, dst_port)
            } else {
                Mbuf::from_payload(&[0xFF; 40])
            }
        }
    }
}

fn verdict_kind(v: &PacketVerdict) -> (u8, Option<DropReason>, usize) {
    match v {
        PacketVerdict::Forward(m) => (0, None, m.len()),
        PacketVerdict::Drop(r) => (1, Some(*r), 0),
        PacketVerdict::Buffered => (2, None, 0),
    }
}

#[test]
fn burst_path_is_observationally_identical_to_scalar() {
    for seed in [7u64, 42, 1234] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (mut scalar, scalar_ctxs) = build_plane();
        let (mut burst_dp, burst_ctxs) = build_plane();

        let mut sticky = 0u32;
        let mut now = 1_000u64;
        for _round in 0..200 {
            let burst_size = rng.gen_range(1..49);
            // Advance time between bursts so token buckets refill and
            // idle eviction timing matters; within a burst both paths
            // see one `now`, matching the one-clock-read design.
            now += rng.gen_range(0..2_000_000);
            let packets: Vec<Mbuf> = (0..burst_size).map(|_| next_packet(&mut rng, &mut sticky)).collect();
            // The scalar plane sees byte-identical copies.
            let copies: Vec<Mbuf> = packets.iter().map(|m| Mbuf::from_payload(m.data())).collect();

            let mut burst_in = packets;
            let burst_out = burst_dp.process_burst(&mut burst_in, now);
            let scalar_out: Vec<PacketVerdict> = copies.into_iter().map(|m| scalar.process(m, now)).collect();

            assert_eq!(burst_out.len(), scalar_out.len());
            for (k, (b, s)) in burst_out.iter().zip(&scalar_out).enumerate() {
                assert_eq!(verdict_kind(b), verdict_kind(s), "seed {seed} packet {k}");
            }
        }

        assert_eq!(scalar.metrics(), burst_dp.metrics(), "seed {seed}: drop taxonomy diverged");
        assert_eq!(scalar.iot_packets, burst_dp.iot_packets, "seed {seed}");
        assert_eq!(scalar.iot_bytes, burst_dp.iot_bytes, "seed {seed}");
        assert_eq!(scalar.table_stats(), burst_dp.table_stats(), "seed {seed}: table churn diverged");
        assert_eq!(
            scalar.pipeline_latency().count(),
            burst_dp.pipeline_latency().count(),
            "seed {seed}: histogram population diverged"
        );
        for (u, (a, b)) in scalar_ctxs.iter().zip(&burst_ctxs).enumerate() {
            assert_eq!(
                counters_of(scalar.slab(), *a),
                counters_of(burst_dp.slab(), *b),
                "seed {seed}: user {u} counters diverged"
            );
        }
    }
}

#[test]
fn burst_path_identical_under_concurrent_view_republish() {
    // Seqlock-path variant of the differential: while the burst plane
    // processes, a concurrent "control thread" keeps republishing each
    // user's view with unchanged values (a field written to itself goes
    // through the publishing write guard). Data-path reads race real
    // seqlock publish windows — retries happen — but since the values
    // never change, verdicts, metrics, and per-user counters must stay
    // byte-identical to the undisturbed scalar plane.
    use std::sync::atomic::{AtomicBool, Ordering};
    for seed in [7u64, 42, 1234] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (mut scalar, scalar_ctxs) = build_plane();
        let (mut burst_dp, burst_ctxs) = build_plane();

        let stop = Arc::new(AtomicBool::new(false));
        let republisher = {
            let slab = Arc::clone(burst_dp.slab());
            let handles = burst_ctxs.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rounds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for h in &handles {
                        // Dropping the guard republishes the (identical)
                        // view, cycling the sequence odd→even under the
                        // data path's feet.
                        drop(slab.resolve(*h).expect("live handle").ctrl_write());
                    }
                    rounds += 1;
                    std::thread::yield_now();
                }
                rounds
            })
        };

        let mut sticky = 0u32;
        let mut now = 1_000u64;
        for _round in 0..200 {
            let burst_size = rng.gen_range(1..49);
            now += rng.gen_range(0..2_000_000);
            let packets: Vec<Mbuf> = (0..burst_size).map(|_| next_packet(&mut rng, &mut sticky)).collect();
            let copies: Vec<Mbuf> = packets.iter().map(|m| Mbuf::from_payload(m.data())).collect();

            let mut burst_in = packets;
            let burst_out = burst_dp.process_burst(&mut burst_in, now);
            let scalar_out: Vec<PacketVerdict> = copies.into_iter().map(|m| scalar.process(m, now)).collect();

            assert_eq!(burst_out.len(), scalar_out.len());
            for (k, (b, s)) in burst_out.iter().zip(&scalar_out).enumerate() {
                assert_eq!(verdict_kind(b), verdict_kind(s), "seed {seed} packet {k}");
            }
        }

        stop.store(true, Ordering::Relaxed);
        assert!(republisher.join().expect("republisher") > 0, "republisher made progress");

        assert_eq!(scalar.metrics(), burst_dp.metrics(), "seed {seed}: drop taxonomy diverged");
        assert_eq!(scalar.table_stats(), burst_dp.table_stats(), "seed {seed}: table churn diverged");
        for (u, (a, b)) in scalar_ctxs.iter().zip(&burst_ctxs).enumerate() {
            assert_eq!(
                counters_of(scalar.slab(), *a),
                counters_of(burst_dp.slab(), *b),
                "seed {seed}: user {u} counters diverged"
            );
        }
    }
}

#[test]
fn scalar_process_is_the_burst_size_one_case() {
    // Driving process_burst with singleton bursts must equal process().
    let (mut a, a_ctxs) = build_plane();
    let (mut b, b_ctxs) = build_plane();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut sticky = 0u32;
    for i in 0..500u64 {
        let now = 1_000 + i * 10_000;
        let m = next_packet(&mut rng, &mut sticky);
        let copy = Mbuf::from_payload(m.data());
        let va = a.process(m, now);
        let vb = b.process_burst(&mut vec![copy], now);
        assert_eq!(verdict_kind(&va), verdict_kind(&vb[0]), "packet {i}");
    }
    assert_eq!(a.metrics(), b.metrics());
    for (x, y) in a_ctxs.iter().zip(&b_ctxs) {
        assert_eq!(counters_of(a.slab(), *x), counters_of(b.slab(), *y));
    }
}
