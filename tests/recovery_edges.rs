// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! Recovery edge cases: the failure modes that sit *around* the happy
//! restore path. A checkpoint cut off mid-record (the writing node died
//! mid-flush) must be rejected atomically — error, no partial apply; a
//! replication frame with a future format version must be counted as
//! corrupt by the standby, not applied and not panicked on. The
//! remaining recovery race — a standby adopting an IMSI while the same
//! IMSI migrates — lives in the deterministic simulator
//! (`crates/sim/tests/sim_schedules.rs::kill_racing_migration_never_double_adopts`),
//! where the interleaving is schedulable rather than accidental.

use pepc::ctrl::{Allocator, CtrlEvent};
use pepc::recovery::{self, RecoveryError};
use pepc::ControlPlane;
use pepc_ha::{decode, encode, ReplKind, ReplRecord, ReplogError, StandbyStore, REPLOG_VERSION};

fn cp() -> ControlPlane {
    ControlPlane::new(
        0x0AFE_0001,
        1,
        Allocator { teid_base: 0x1000, ue_ip_base: 0x0A00_0001, guti_base: 0xD000, mme_ue_id_base: 1 },
        None,
    )
}

fn populated(n: u64) -> ControlPlane {
    let mut c = cp();
    for imsi in 0..n {
        c.apply_event(CtrlEvent::Attach { imsi });
        let ctx = c.context_of(imsi).unwrap();
        ctx.update_counters(|cnt| cnt.uplink_bytes = imsi * 100);
    }
    c.take_updates();
    c
}

/// Truncate a valid checkpoint at *every* byte boundary. Each prefix
/// must parse to a clean error — header too short, body not JSON, JSON
/// cut mid-record — and a restore attempt must leave the target control
/// plane untouched (no partially-adopted users).
#[test]
fn checkpoint_truncated_at_every_prefix_rejects_atomically() {
    let bytes = recovery::checkpoint(&populated(8));
    for cut in 0..bytes.len() {
        let prefix = &bytes[..cut];
        assert!(recovery::parse(prefix).is_err(), "prefix of {cut} bytes parsed as a checkpoint");
        let mut target = cp();
        let err = recovery::restore(&mut target, prefix);
        assert!(err.is_err(), "restore accepted a {cut}-byte prefix");
        assert_eq!(target.user_count(), 0, "restore partially applied a {cut}-byte prefix");
        assert!(!target.has_updates(), "rejected restore queued data-plane updates");
    }
    // The untruncated document still restores fully — the loop above
    // proved rejection, this proves we were rejecting *truncation*.
    let mut target = cp();
    assert_eq!(recovery::restore(&mut target, &bytes).unwrap(), 8);
}

/// Flipping the single checkpoint version byte must fail closed even
/// when the body is pristine.
#[test]
fn checkpoint_version_byte_gates_before_the_body() {
    let mut bytes = recovery::checkpoint(&populated(3));
    bytes[0] = bytes[0].wrapping_add(1);
    let mut target = cp();
    match recovery::restore(&mut target, &bytes) {
        Err(RecoveryError::WrongVersion { found, expected }) => {
            assert_eq!(found, u32::from(recovery::CHECKPOINT_VERSION as u8 + 1));
            assert_eq!(expected, recovery::CHECKPOINT_VERSION);
        }
        other => panic!("expected WrongVersion, got {other:?}"),
    }
    assert_eq!(target.user_count(), 0);
}

fn sample_record(seq: u64) -> ReplRecord {
    ReplRecord { kind: ReplKind::Heartbeat, node: 0, seq, tick: 7, imsi: 0, user: None }
}

/// A frame stamped with a future REPLOG_VERSION: `decode` names the
/// version in its error, and the standby counts it corrupt without
/// applying anything (its sequence tracking is unmoved).
#[test]
fn replog_version_mismatch_is_rejected_by_the_standby() {
    let mut frame = encode(&sample_record(1));
    frame[0] = REPLOG_VERSION + 1;
    match decode(&frame) {
        Err(ReplogError::WrongVersion { found }) => assert_eq!(found, REPLOG_VERSION + 1),
        other => panic!("expected WrongVersion, got {other:?}"),
    }

    let mut standby = StandbyStore::new(2);
    assert_eq!(standby.ingest(&frame), None, "standby applied a wrong-version frame");
    assert_eq!(standby.corrupt(), 1, "wrong-version frame not counted corrupt");
    assert_eq!(standby.max_seq(0), 0, "sequence tracking advanced on a rejected frame");

    // A well-formed frame right after still applies — the bad frame
    // poisoned nothing.
    assert_eq!(standby.ingest(&encode(&sample_record(2))), Some((0, ReplKind::Heartbeat)));
    assert_eq!(standby.max_seq(0), 2);
    assert_eq!(standby.corrupt(), 1);
}

/// Replication frames truncated at every prefix: decode errors cleanly,
/// the standby counts each as corrupt, and nothing is applied.
#[test]
fn replog_truncated_at_every_prefix_is_counted_corrupt() {
    let frame = encode(&ReplRecord {
        kind: ReplKind::CtrlSnapshot,
        node: 1,
        seq: 5,
        tick: 3,
        imsi: 404_01_0000000001,
        user: Some(pepc::recovery::UserRecord {
            ctrl: pepc::state::ControlState::new(404_01_0000000001),
            counters: Default::default(),
        }),
    });
    let mut standby = StandbyStore::new(2);
    for cut in 0..frame.len() {
        assert!(decode(&frame[..cut]).is_err(), "{cut}-byte prefix decoded");
        assert_eq!(standby.ingest(&frame[..cut]), None);
    }
    assert_eq!(standby.corrupt() as usize, frame.len());
    assert_eq!(standby.user_count(1), 0, "truncated frames materialized a user");
    // The full frame still lands.
    assert_eq!(standby.ingest(&frame), Some((1, ReplKind::CtrlSnapshot)));
    assert_eq!(standby.user_count(1), 1);
}
