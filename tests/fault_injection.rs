//! Failure injection across the stack: corrupted / dropped / rate-limited
//! packets must degrade service, never crash it, and valid traffic must
//! keep flowing around the faults.

use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
use pepc::node::PepcNode;
use pepc_fabric::{FaultSpec, Port, PortPair, Wire};
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};
use rand::{Rng, SeedableRng};

fn node() -> PepcNode {
    let config = EpcConfig {
        slices: 2,
        slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..Default::default() },
        ..EpcConfig::default()
    };
    PepcNode::new(config, None)
}

fn uplink_for(node: &mut PepcNode, imsi: u64) -> Mbuf {
    let k = node.demux().slice_for_imsi(imsi).unwrap();
    let ctx = node.slice(k).ctrl.context_of(imsi).unwrap();
    let (teid, ue_ip) = {
        let c = ctx.ctrl_read();
        (c.tunnels.gw_teid, c.ue_ip)
    };
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(ue_ip, 0x0808_0808, IpProto::Udp, UDP_HDR_LEN + 16).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(1, 2, 16).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    m.extend(&hdr);
    m.extend(&[0u8; 16]);
    encap_gtpu(&mut m, 0xC0A8_0001, node.config().gw_ip, teid).unwrap();
    m
}

/// A faulty wire between the "eNodeB" and the node: drops and corrupts.
fn faulty_rig(spec: FaultSpec) -> (Port, Wire, Port) {
    let (enb, enb_far) = PortPair::new(4096);
    let (node_far, node_port) = PortPair::new(4096);
    (enb, Wire::new(enb_far, node_far, spec), node_port)
}

#[test]
fn corrupted_packets_are_dropped_cleanly_and_good_ones_flow() {
    let mut n = node();
    n.attach(7);
    let (mut enb, mut wire, mut rx) =
        faulty_rig(FaultSpec { corrupt_chance: 0.30, seed: 1234, ..FaultSpec::default() });
    for _ in 0..2000 {
        let pkt = uplink_for(&mut n, 7);
        enb.tx(pkt);
    }
    while wire.pump(256) > 0 {}
    let mut arrived = Vec::new();
    rx.rx_burst(&mut arrived, usize::MAX);
    assert_eq!(arrived.len(), 2000);

    let mut forwarded = 0;
    let mut dropped = 0;
    for m in arrived {
        if n.process(m).is_forward() {
            forwarded += 1;
        } else {
            dropped += 1;
        }
    }
    // Corruption can hit headers (malformed / wrong TEID → drop) or the
    // payload (still forwards). Nothing panics; most traffic survives.
    assert!(forwarded > 1200, "forwarded {forwarded}");
    assert!(dropped > 0, "some corrupted packets must have been rejected");
    assert_eq!(forwarded + dropped, 2000);
}

#[test]
fn lossy_wire_reduces_delivery_but_not_correctness() {
    let mut n = node();
    n.attach(7);
    let (mut enb, mut wire, mut rx) = faulty_rig(FaultSpec { drop_chance: 0.5, seed: 7, ..FaultSpec::default() });
    for _ in 0..1000 {
        let pkt = uplink_for(&mut n, 7);
        enb.tx(pkt);
    }
    while wire.pump(256) > 0 {}
    let mut arrived = Vec::new();
    rx.rx_burst(&mut arrived, usize::MAX);
    let got = arrived.len();
    assert!((300..700).contains(&got), "wire dropped ~half: {got}");
    for m in arrived {
        assert!(n.process(m).is_forward(), "survivors all forward");
    }
    let k = n.demux().slice_for_imsi(7).unwrap();
    assert_eq!(n.slice(k).ctrl.counters_of(7).unwrap().uplink_packets as usize, got);
}

#[test]
fn random_garbage_never_panics_the_node() {
    let mut n = node();
    n.attach(7);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for len in 0..200 {
        let mut bytes = vec![0u8; len];
        rng.fill(&mut bytes[..]);
        let m = Mbuf::from_payload(&bytes);
        let _ = n.process(m); // must not panic, whatever the verdict
    }
    // Real traffic still flows afterwards.
    let pkt = uplink_for(&mut n, 7);
    assert!(n.process(pkt).is_forward());
}

#[test]
fn truncated_real_packets_never_panic() {
    let mut n = node();
    n.attach(7);
    let full = uplink_for(&mut n, 7);
    let bytes = full.data().to_vec();
    for cut in 0..bytes.len() {
        let m = Mbuf::from_payload(&bytes[..cut]);
        let _ = n.process(m);
    }
    let pkt = uplink_for(&mut n, 7);
    assert!(n.process(pkt).is_forward());
}

/// Push `count` uplinks for `imsi` through a faulty wire into the node
/// and return (wire stats, node snapshot).
fn run_faulty(spec: FaultSpec, count: usize) -> (pepc_fabric::WireStats, pepc::MetricsSnapshot) {
    let mut n = node();
    n.attach(7);
    let (mut enb, mut wire, mut rx) = faulty_rig(spec);
    for _ in 0..count {
        let pkt = uplink_for(&mut n, 7);
        enb.tx(pkt);
    }
    while wire.pump(256) > 0 {}
    let mut arrived = Vec::new();
    rx.rx_burst(&mut arrived, usize::MAX);
    for m in arrived {
        let _ = n.process(m);
    }
    (wire.stats(), n.metrics_snapshot())
}

#[test]
fn fault_matrix_accounts_for_every_packet_and_repeats_exactly() {
    // Sweep the fault space: each axis alone and all three combined,
    // across several seeds. Whatever the wire does, the node's drop
    // taxonomy must attribute every packet it received, and the whole
    // run must be a pure function of the seed.
    let specs = [
        FaultSpec { drop_chance: 0.2, ..FaultSpec::default() },
        FaultSpec { corrupt_chance: 0.2, ..FaultSpec::default() },
        FaultSpec { reorder_chance: 0.2, ..FaultSpec::default() },
        FaultSpec { drop_chance: 0.1, corrupt_chance: 0.1, reorder_chance: 0.1, ..FaultSpec::default() },
    ];
    for base in &specs {
        for seed in [1u64, 99, 0xC0FFEE] {
            let spec = FaultSpec { seed, ..base.clone() };
            let (ws, snap) = run_faulty(spec.clone(), 1500);
            let t = snap.data_totals();

            // The wire accounts for the offered load; the node accounts
            // for what survived the wire. Packets whose outer headers
            // were corrupted beyond recognition die at the demux, so the
            // slices may see slightly less than the wire forwarded — but
            // what they do see is fully attributed.
            assert_eq!(ws.forwarded + ws.dropped, 1500, "{spec:?}");
            assert!(t.rx <= ws.forwarded, "{spec:?}");
            assert!(snap.conservation_holds(), "{spec:?}: {t:?}");
            assert_eq!(snap.slices.iter().map(|s| s.pipeline_ns.count()).sum::<u64>(), t.forwarded);
            if base.drop_chance > 0.0 {
                assert!(ws.dropped > 0, "{spec:?}");
            }
            if base.corrupt_chance > 0.0 {
                assert!(ws.corrupted > 0 && t.drops_total() > 0, "{spec:?}: {ws:?} {t:?}");
            }
            if base.reorder_chance > 0.0 {
                assert!(ws.reordered > 0, "{spec:?}");
                // Reordering conserves: nothing extra is dropped, and the
                // uplink pipeline is order-insensitive.
                if base.drop_chance == 0.0 && base.corrupt_chance == 0.0 {
                    assert_eq!(t.forwarded, 1500, "{spec:?}");
                }
            }

            // Same seed → bit-identical fault decisions → identical
            // counters, histogram populations and ring gauges.
            let (ws2, snap2) = run_faulty(spec.clone(), 1500);
            assert_eq!(ws, ws2, "wire diverged for {spec:?}");
            assert!(snap.deterministic_eq(&snap2), "node diverged for {spec:?}");
        }
    }
}

#[test]
fn bitflips_in_every_position_never_panic() {
    let mut n = node();
    n.attach(7);
    let full = uplink_for(&mut n, 7);
    let bytes = full.data().to_vec();
    for pos in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut b = bytes.clone();
            b[pos] ^= bit;
            let _ = n.process(Mbuf::from_payload(&b));
        }
    }
}
