// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! End-to-end attach and session lifecycle through a whole PEPC node:
//! S1AP/NAS signaling against live HSS/PCRF backends, then data traffic,
//! mobility and detach.

use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
use pepc::ctrl::run_attach_with;
use pepc::node::{NodeVerdict, PepcNode};
use pepc_backend::{Hss, Pcrf};
use pepc_net::gtp::{decap_gtpu, encap_gtpu};
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};
use pepc_sigproto::nas::NasMsg;
use pepc_sigproto::s1ap::S1apPdu;
use std::sync::Arc;

const IMSI_BASE: u64 = 404_01_0000000000;

fn node_with_backends(slices: usize, subscribers: u64) -> PepcNode {
    let hss = Arc::new(Hss::new());
    hss.provision_range(IMSI_BASE, subscribers, 100_000);
    let pcrf = Arc::new(Pcrf::with_standard_rules());
    let config = EpcConfig {
        slices,
        slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..Default::default() },
        ..EpcConfig::default()
    };
    PepcNode::new(config, Some((hss, pcrf)))
}

fn udp_packet(src: u32, dst: u32, dport: u16, payload: &[u8]) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(src, dst, IpProto::Udp, UDP_HDR_LEN + payload.len()).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(40000, dport, payload.len()).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    m.extend(&hdr);
    m.extend(payload);
    m
}

#[test]
fn attach_traffic_handover_detach_lifecycle() {
    let mut node = node_with_backends(2, 100);
    let imsi = IMSI_BASE + 7;

    // Full S1AP/NAS attach.
    let (guti, ue_ip, gw_teid) =
        run_attach_with(|p| node.handle_s1ap(p), imsi, 1, 0xE100, 0xC0A8_0001).expect("attach");
    assert_eq!(node.user_count(), 1);

    // Uplink through the node.
    let mut up = udp_packet(ue_ip, 0x0808_0808, 53, b"q");
    encap_gtpu(&mut up, 0xC0A8_0001, node.config().gw_ip, gw_teid).unwrap();
    assert!(node.process(up).is_forward());

    // Downlink reaches the eNodeB from the attach.
    match node.process(udp_packet(0x0808_0808, ue_ip, 40000, b"r")) {
        NodeVerdict::Forward(mut m) => {
            let (gtp, outer) = decap_gtpu(&mut m).unwrap();
            assert_eq!(gtp.teid, 0xE100);
            assert_eq!(outer.dst, 0xC0A8_0001);
        }
        other => panic!("{other:?}"),
    }

    // X2 handover repoints the downlink without touching the gateway TEID.
    let k = node.demux().slice_for_imsi(imsi).unwrap();
    let mme_ue_id = {
        // First attach on this slice → first MME UE id of its range.

        1 + ((k as u32) << 24)
    };
    let rsp = node.handle_s1ap(&S1apPdu::PathSwitchRequest {
        enb_ue_id: 9,
        mme_ue_id,
        new_enb_teid: 0xE200,
        new_enb_ip: 0xC0A8_0002,
        ecgi: 0x300,
    });
    assert!(matches!(rsp.as_slice(), [S1apPdu::PathSwitchRequestAck { .. }]));
    match node.process(udp_packet(1, ue_ip, 40000, b"x")) {
        NodeVerdict::Forward(mut m) => {
            let (gtp, outer) = decap_gtpu(&mut m).unwrap();
            assert_eq!(gtp.teid, 0xE200);
            assert_eq!(outer.dst, 0xC0A8_0002);
        }
        other => panic!("{other:?}"),
    }

    // Detach over NAS; traffic stops.
    let rsp = node.handle_s1ap(&S1apPdu::UplinkNasTransport {
        enb_ue_id: 1,
        mme_ue_id,
        nas: NasMsg::DetachRequest { guti }.encode(),
    });
    match rsp.as_slice() {
        [S1apPdu::DownlinkNasTransport { nas, .. }] => {
            assert!(matches!(NasMsg::decode(nas).unwrap(), NasMsg::DetachAccept));
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(node.user_count(), 0);
    let mut up = udp_packet(ue_ip, 0x0808_0808, 53, b"q");
    encap_gtpu(&mut up, 0xC0A8_0001, node.config().gw_ip, gw_teid).unwrap();
    assert!(!node.process(up).is_forward(), "detached users carry no traffic");
}

#[test]
fn many_users_attach_across_slices_and_all_flow() {
    let mut node = node_with_backends(4, 200);
    let mut keys = Vec::new();
    for i in 0..100u64 {
        let imsi = IMSI_BASE + i;
        let (_, ue_ip, gw_teid) =
            run_attach_with(|p| node.handle_s1ap(p), imsi, i as u32 + 1, 0xE000 + i as u32, 0xC0A8_0001)
                .expect("attach");
        keys.push((imsi, ue_ip, gw_teid));
    }
    assert_eq!(node.user_count(), 100);
    // Every slice got some users (hash spread).
    for k in 0..4 {
        assert!(node.slice(k).ctrl.user_count() > 0, "slice {k} empty");
    }
    // All users pass traffic both ways.
    for &(_imsi, ue_ip, gw_teid) in &keys {
        let mut up = udp_packet(ue_ip, 0x0808_0808, 80, b"z");
        encap_gtpu(&mut up, 0xC0A8_0001, node.config().gw_ip, gw_teid).unwrap();
        assert!(node.process(up).is_forward());
        assert!(node.process(udp_packet(1, ue_ip, 40000, b"y")).is_forward());
    }
}

#[test]
fn unknown_subscriber_is_rejected_with_nas_cause() {
    let mut node = node_with_backends(1, 10);
    let rsp = node.handle_s1ap(&S1apPdu::InitialUeMessage {
        enb_ue_id: 1,
        ecgi: 1,
        tac: 1,
        nas: NasMsg::AttachRequest { imsi: IMSI_BASE + 999_999, ue_capability: 0 }.encode(),
    });
    match rsp.as_slice() {
        [S1apPdu::DownlinkNasTransport { nas, .. }] => {
            assert!(matches!(NasMsg::decode(nas).unwrap(), NasMsg::AttachReject { .. }));
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(node.user_count(), 0);
}

#[test]
fn pcef_rules_from_pcrf_drive_qos_classing() {
    let mut node = node_with_backends(1, 10);
    let imsi = IMSI_BASE + 1;
    let (_, ue_ip, gw_teid) = run_attach_with(|p| node.handle_s1ap(p), imsi, 1, 0xE1, 0xC0A8_0001).expect("attach");
    // SIP traffic (udp :5060) matches the PCRF's QCI-5 rule — the rule
    // set was installed at attach; verify the user's rule list is wired.
    let k = node.demux().slice_for_imsi(imsi).unwrap();
    let ctx = node.slice(k).ctrl.context_of(imsi).unwrap();
    assert!(!ctx.ctrl_read().pcef_rules.is_empty());
    let mut up = udp_packet(ue_ip, 0x0808_0808, 5060, b"INVITE");
    encap_gtpu(&mut up, 0xC0A8_0001, node.config().gw_ip, gw_teid).unwrap();
    assert!(node.process(up).is_forward());
}
