//! Interleaving matrix for the per-UE procedure machines (PR 6, PR 10).
//!
//! One UE, five procedure message streams — attach, duplicate attach
//! (same S1 association), S1 handover, detach, bearer setup — shuffled
//! against each other in **every** pairwise interleaving that preserves
//! intra-stream order, plus seeded K-stream shuffles via
//! [`pepc_workload::signaling::OverlapGen`] for the combinations where
//! enumeration would explode.
//!
//! PR 10 adds the **multi-UE chaos matrix**: several UEs, each running
//! its full lifecycle (attach → release → page-race → detach), with the
//! UEs' streams shuffled against each other — exhaustively for two UEs,
//! seeded for three and more (`PROC_UES`/`PROC_SHUFFLES` env knobs).
//! Paging adds a third conservation identity checked after **every**
//! message: `paged == paging_resolved + paging_expired + in_flight`.
//!
//! Every ordering must leave the control plane in a *legal terminal
//! state*:
//!   - no panic, ever;
//!   - exact signaling conservation after **every** message:
//!     `s1ap_rx == sig_consumed + proc_deduped + sig_dropped + backlog`;
//!   - exact procedure accounting:
//!     `started == completed + preempted + aborted + expired + in-flight`;
//!   - after supervision expiry, nothing is left in flight or parked;
//!   - at most one user record exists, internally consistent (its GUTI
//!     routes back to it, its identifiers are non-zero).
//!
//! Failures in the seeded matrix dump a self-contained JSON trace to
//! `$PROC_TRACE_DIR` (CI uploads them as artifacts) so any failing
//! shuffle can be replayed exactly.

use pepc::ctrl::{Allocator, ControlPlane, CtrlEvent};
use pepc::proxy::Proxy;
use pepc_backend::hss::sim_response;
use pepc_backend::{Hss, Pcrf};
use pepc_sigproto::nas::NasMsg;
use pepc_sigproto::s1ap::S1apPdu;
use pepc_workload::signaling::{
    attach_script, bearer_script, detach_script, handover_script, page_race_script, OverlapGen, ProcStep,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

const IMSI: u64 = 1;

fn cp_with_backends() -> ControlPlane {
    let hss = std::sync::Arc::new(Hss::new());
    hss.provision_range(1, 8, 100_000);
    let pcrf = std::sync::Arc::new(Pcrf::with_standard_rules());
    let proxy = std::sync::Arc::new(Proxy::new(hss, pcrf, 1, 40401));
    let alloc = Allocator { teid_base: 0x1000, ue_ip_base: 0x0A00_0001, guti_base: 0xD00D_0000, mme_ue_id_base: 1 };
    ControlPlane::new(0x0AFE_0001, 1, alloc, Some(proxy))
}

/// Replays `(enb_ue_id, step)` pairs against one control plane, filling
/// transport identifiers from the responses observed so far — exactly
/// what a real eNodeB does, which is what keeps a stream replayable
/// after an overlapping procedure preempted it (the identifiers simply
/// go stale and the dispatcher must cope).
struct Driver {
    cp: ControlPlane,
    /// Last authentication challenge seen (drives RES computation).
    rand: Option<u64>,
    /// Last MME UE id any downlink PDU carried.
    mme: u32,
    /// Last GUTI an Attach Accept carried.
    guti: Option<u64>,
    sent: u64,
}

impl Driver {
    fn new() -> Self {
        Driver { cp: cp_with_backends(), rand: None, mme: 0, guti: None, sent: 0 }
    }

    fn send(&mut self, pdu: &S1apPdu) -> Vec<S1apPdu> {
        let out = self.cp.handle_s1ap(pdu);
        self.sent += 1;
        for p in &out {
            match p {
                S1apPdu::DownlinkNasTransport { mme_ue_id, nas, .. } => {
                    if let Ok(NasMsg::AuthenticationRequest { rand, .. }) = NasMsg::decode(nas) {
                        self.rand = Some(rand);
                        self.mme = *mme_ue_id;
                    }
                }
                S1apPdu::InitialContextSetupRequest { mme_ue_id, nas, .. } => {
                    self.mme = *mme_ue_id;
                    if let Ok(NasMsg::AttachAccept { guti, .. }) = NasMsg::decode(nas) {
                        self.guti = Some(guti);
                    }
                }
                _ => {}
            }
        }
        self.assert_conservation("after message");
        out
    }

    fn apply(&mut self, tag: u32, step: ProcStep) -> Vec<S1apPdu> {
        let enb_ue_id = tag;
        match step {
            ProcStep::AttachStart => self.send(&S1apPdu::InitialUeMessage {
                enb_ue_id,
                ecgi: 0x100,
                tac: 1,
                nas: NasMsg::AttachRequest { imsi: IMSI, ue_capability: 0xF0 }.encode(),
            }),
            ProcStep::AuthResponse => {
                // RES from the last challenge; 0 if we never saw one
                // (the procedure it answers was displaced).
                let res = self.rand.map(|r| sim_response(Hss::key_for(IMSI), r)).unwrap_or(0);
                let mme_ue_id = self.mme;
                self.send(&S1apPdu::UplinkNasTransport {
                    enb_ue_id,
                    mme_ue_id,
                    nas: NasMsg::AuthenticationResponse { res }.encode(),
                })
            }
            ProcStep::SecurityModeComplete => {
                let mme_ue_id = self.mme;
                self.send(&S1apPdu::UplinkNasTransport {
                    enb_ue_id,
                    mme_ue_id,
                    nas: NasMsg::SecurityModeComplete.encode(),
                })
            }
            ProcStep::IcsResponse => {
                let mme_ue_id = self.mme;
                self.send(&S1apPdu::InitialContextSetupResponse {
                    enb_ue_id,
                    mme_ue_id,
                    enb_teid: 0xE000 + enb_ue_id,
                    enb_ip: 0xC0A8_0001,
                })
            }
            ProcStep::AttachComplete => {
                let mme_ue_id = self.mme;
                self.send(&S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas: NasMsg::AttachComplete.encode() })
            }
            ProcStep::HoRequired => {
                let mme_ue_id = self.mme;
                self.send(&S1apPdu::HandoverRequired { enb_ue_id, mme_ue_id, target_ecgi: 0x300 })
            }
            ProcStep::HoAck => {
                let mme_ue_id = self.mme;
                self.send(&S1apPdu::HandoverRequestAck {
                    mme_ue_id,
                    new_enb_teid: 0xE100 + enb_ue_id,
                    new_enb_ip: 0xC0A8_0002,
                })
            }
            ProcStep::Detach => {
                // A GUTI we never learned cannot route: exercise the
                // discard path with a miss value.
                let guti = self.guti.unwrap_or(0xDEAD_BEEF);
                self.send(&S1apPdu::UplinkNasTransport {
                    enb_ue_id,
                    mme_ue_id: self.mme,
                    nas: NasMsg::DetachRequest { guti }.encode(),
                })
            }
            ProcStep::BearerModify => {
                // Bearer setup rides the synthetic event path (no S1AP
                // message in this model); it must compose with any
                // in-flight procedure.
                self.cp.apply_event(CtrlEvent::ModifyBearer { imsi: IMSI, ambr_kbps: 4242 });
                self.assert_conservation("after bearer event");
                vec![]
            }
            ProcStep::ReleaseRequest => {
                let mme_ue_id = self.mme;
                self.send(&S1apPdu::UeContextReleaseRequest { enb_ue_id, mme_ue_id, cause: 0 })
            }
            ProcStep::PageTrigger => {
                // Network-originated: no inbound PDU, but counted as
                // signaling so the identities hold.
                let out = self.cp.page(IMSI);
                self.sent += 1;
                self.assert_conservation("after page trigger");
                out
            }
            ProcStep::ServiceRequest => {
                let guti = self.guti.unwrap_or(0xDEAD_BEEF);
                self.send(&S1apPdu::InitialUeMessage {
                    enb_ue_id,
                    ecgi: 0x100,
                    tac: 1,
                    nas: NasMsg::ServiceRequest { guti }.encode(),
                })
            }
        }
    }

    fn assert_conservation(&self, when: &str) {
        let m = self.cp.metrics();
        assert!(
            m.signaling_conservation_holds(self.cp.mailbox_backlog()),
            "{when}: s1ap_rx={} consumed={} deduped={} dropped={} overflow={} shed={} backlog={}",
            m.s1ap_rx,
            m.sig_consumed,
            m.proc_deduped,
            m.sig_dropped,
            m.sig_overflow,
            m.sig_shed_total(),
            self.cp.mailbox_backlog()
        );
        assert!(
            m.procedure_accounting_holds(self.cp.procedures_in_flight()),
            "{when}: started={} completed={} preempted={} aborted={} expired={} in_flight={}",
            m.proc_started,
            m.proc_completed,
            m.proc_preempted,
            m.proc_aborted,
            m.proc_expired,
            self.cp.procedures_in_flight()
        );
        assert!(
            m.paging_accounting_holds(self.cp.paging_in_flight()),
            "{when}: paged={} resolved={} expired={} in_flight={}",
            m.paged,
            m.paging_resolved,
            m.paging_expired,
            self.cp.paging_in_flight()
        );
    }

    /// Terminal legality: expire whatever is still in flight, then
    /// nothing may remain half-done and at most one consistent user
    /// record may exist.
    fn assert_legal_terminal_state(&mut self) {
        self.cp.expire_procedures(1_000_000, 1);
        assert_eq!(self.cp.procedures_in_flight(), 0, "UE stuck mid-procedure after expiry");
        assert_eq!(self.cp.mailbox_backlog(), 0, "mailbox not drained by expiry");
        assert_eq!(self.cp.paging_in_flight(), 0, "page still in flight after expiry");
        self.assert_conservation("terminal");
        let users = self.cp.user_count();
        assert!(users <= 1, "single UE produced {users} user records");
        if users == 1 {
            let ctx = self.cp.context_of(IMSI).expect("the one user is our IMSI");
            let c = ctx.ctrl_read().clone();
            assert_eq!(c.imsi, IMSI);
            assert_ne!(c.ue_ip, 0, "attached user without a UE IP");
            assert_ne!(c.tunnels.gw_teid, 0, "attached user without a gateway TEID");
            assert!(self.cp.knows_guti(c.guti), "user's GUTI does not route back to it");
        }
        // The data-plane update stream must drain without panicking.
        let _ = self.cp.take_updates();
    }
}

/// The five stream instances of the matrix. The duplicate attach shares
/// the attach's S1 association (eNB UE id) — that is what makes it a
/// retransmission rather than a new attempt.
fn streams() -> Vec<(&'static str, u32, Vec<ProcStep>)> {
    vec![
        ("attach", 0x10, attach_script()),
        ("dup-attach", 0x10, attach_script()),
        ("handover", 0x20, handover_script()),
        ("detach", 0x30, detach_script()),
        ("bearer-setup", 0x40, bearer_script()),
    ]
}

/// [`streams`] plus the paging race (PR 10) — used by the seeded shuffle,
/// which asserts legality rather than a fixed matrix size.
fn streams_with_paging() -> Vec<(&'static str, u32, Vec<ProcStep>)> {
    let mut v = streams();
    v.push(("page-race", 0x50, page_race_script()));
    v
}

/// Enumerate every merge of `a` and `b` that preserves both orders
/// (C(|a|+|b|, |a|) of them) and run `f` on each.
fn for_each_interleaving<F: FnMut(&[(u32, ProcStep)])>(a: &[(u32, ProcStep)], b: &[(u32, ProcStep)], f: &mut F) {
    fn rec<F: FnMut(&[(u32, ProcStep)])>(
        a: &[(u32, ProcStep)],
        b: &[(u32, ProcStep)],
        prefix: &mut Vec<(u32, ProcStep)>,
        f: &mut F,
    ) {
        if a.is_empty() && b.is_empty() {
            f(prefix);
            return;
        }
        if let Some((&x, rest)) = a.split_first() {
            prefix.push(x);
            rec(rest, b, prefix, f);
            prefix.pop();
        }
        if let Some((&y, rest)) = b.split_first() {
            prefix.push(y);
            rec(a, rest, prefix, f);
            prefix.pop();
        }
    }
    rec(a, b, &mut Vec::new(), f);
}

fn run_sequence(seq: &[(u32, ProcStep)]) {
    let mut d = Driver::new();
    for &(tag, step) in seq {
        d.apply(tag, step);
    }
    d.assert_legal_terminal_state();
}

/// All pairwise shuffles of the five streams, self-pairs included. For a
/// self-pair the second instance gets its own S1 association (a second
/// attach attempt), except dup-attach whose whole point is sharing one.
#[test]
fn all_pairwise_interleavings_terminate_legally() {
    let streams = streams();
    let mut total = 0u64;
    for i in 0..streams.len() {
        for j in i..streams.len() {
            let (name_a, tag_a, script_a) = &streams[i];
            let (name_b, mut tag_b, script_b) = streams[j].clone();
            if i == j && name_b != "dup-attach" {
                tag_b += 1;
            }
            let a: Vec<(u32, ProcStep)> = script_a.iter().map(|&s| (*tag_a, s)).collect();
            let b: Vec<(u32, ProcStep)> = script_b.iter().map(|&s| (tag_b, s)).collect();
            let mut count = 0u64;
            for_each_interleaving(&a, &b, &mut |seq| {
                count += 1;
                run_sequence(seq);
            });
            let expected = binomial(a.len() + b.len(), a.len());
            assert_eq!(count, expected, "{name_a} x {} enumeration incomplete", name_b);
            total += count;
        }
    }
    // 15 pairs; the three attach x attach-family pairs contribute
    // C(10,5) = 252 orderings each.
    assert_eq!(total, 840, "pairwise matrix size changed");
}

fn binomial(n: usize, k: usize) -> u64 {
    let mut r = 1u64;
    for i in 0..k {
        r = r * (n - i) as u64 / (i + 1) as u64;
    }
    r
}

/// Seeded K-stream shuffles of ALL five streams at once — the region the
/// pairwise matrix cannot reach. Seeds and volume are env-tunable so CI
/// can matrix over them (`PROC_SEED`, `PROC_SHUFFLES`); failures dump a
/// replayable JSON trace to `$PROC_TRACE_DIR`.
#[test]
fn seeded_five_stream_shuffles_terminate_legally() {
    let seeds: Vec<u64> = match std::env::var("PROC_SEED") {
        Ok(s) => vec![s.parse().expect("PROC_SEED must be a u64")],
        Err(_) => vec![1, 7, 42],
    };
    let shuffles: u64 = std::env::var("PROC_SHUFFLES").ok().and_then(|s| s.parse().ok()).unwrap_or(200);
    for seed in seeds {
        for k in 0..shuffles {
            let shuffle_seed = seed.wrapping_mul(0x0100_0000_01B3).wrapping_add(k);
            let scripts: Vec<(u32, Vec<ProcStep>)> =
                streams_with_paging().into_iter().map(|(_, tag, s)| (tag, s)).collect();
            let mut gen = OverlapGen::new(shuffle_seed, scripts);
            let mut seq = Vec::new();
            while let Some(step) = gen.next_step() {
                seq.push(step);
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| run_sequence(&seq)));
            if let Err(panic) = outcome {
                save_trace(shuffle_seed, &seq);
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// Self-contained failure artifact: the exact step sequence, replayable
/// by feeding it back through `run_sequence`.
fn save_trace(shuffle_seed: u64, seq: &[(u32, ProcStep)]) {
    let dir = match std::env::var("PROC_TRACE_DIR") {
        Ok(d) => d,
        Err(_) => return,
    };
    #[derive(serde::Serialize)]
    struct TraceFile {
        version: u32,
        shuffle_seed: u64,
        imsi: u64,
        steps: Vec<String>,
    }
    let trace = TraceFile {
        version: 1,
        shuffle_seed,
        imsi: IMSI,
        steps: seq.iter().map(|(tag, s)| format!("{tag:#x}:{s:?}")).collect(),
    };
    let _ = std::fs::create_dir_all(&dir);
    let path = format!("{dir}/proc-shuffle-{shuffle_seed:#018x}.json");
    if std::fs::write(&path, serde_json::to_string(&trace).unwrap()).is_ok() {
        eprintln!("interleaving failure trace saved to {path}");
    }
}

// -- satellite 4: duplicate-attach idempotency regression --------------------

/// A duplicate NAS Attach Request for an already-attached IMSI used to
/// re-run the whole attach, reallocating TEID and UE IP and orphaning
/// the old data-plane entry. It must instead be idempotent: skip
/// re-authentication and re-emit the context setup with the SAME
/// identifiers.
#[test]
fn duplicate_attach_for_attached_imsi_is_idempotent() {
    let mut d = Driver::new();
    // First attach runs to completion on association 0x10.
    for step in attach_script() {
        d.apply(0x10, step);
    }
    assert_eq!(d.cp.user_count(), 1);
    let before = d.cp.context_of(IMSI).unwrap().ctrl_read().clone();
    assert_ne!(before.ue_ip, 0);
    let _ = d.cp.take_updates();

    // The UE lost our accept and re-attaches on a new association.
    let out = d.apply(0x99, ProcStep::AttachStart);
    match out.as_slice() {
        [S1apPdu::InitialContextSetupRequest { enb_ue_id, gw_teid, nas, .. }] => {
            assert_eq!(*enb_ue_id, 0x99);
            assert_eq!(*gw_teid, before.tunnels.gw_teid, "gateway TEID reallocated");
            match NasMsg::decode(nas) {
                Ok(NasMsg::AttachAccept { guti, ue_ip, .. }) => {
                    assert_eq!(guti, before.guti, "GUTI reallocated");
                    assert_eq!(ue_ip, before.ue_ip, "UE IP reallocated");
                }
                other => panic!("expected Attach Accept, got {other:?}"),
            }
        }
        other => panic!("expected idempotent context setup (no re-auth), got {other:?}"),
    }

    // Completing the repeat leaves one user with unchanged identifiers.
    d.apply(0x99, ProcStep::IcsResponse);
    d.apply(0x99, ProcStep::AttachComplete);
    assert_eq!(d.cp.user_count(), 1);
    let after = d.cp.context_of(IMSI).unwrap().ctrl_read().clone();
    assert_eq!(after.guti, before.guti);
    assert_eq!(after.ue_ip, before.ue_ip);
    assert_eq!(after.tunnels.gw_teid, before.tunnels.gw_teid);
    assert_eq!(d.cp.metrics().attaches, 2, "both completions count");
    d.assert_legal_terminal_state();
}

// -- PR 10: multi-UE chaos matrix --------------------------------------------

/// Full single-UE lifecycle: attach, S1 release, page race (network page
/// vs the UE's own Service Request), detach. Nine messages.
fn ue_lifecycle() -> Vec<ProcStep> {
    let mut s = attach_script();
    s.extend(page_race_script());
    s.extend(detach_script());
    s
}

/// One UE's view of the transport identifiers — learned from responses
/// to its *own* messages, exactly like `Driver` but per UE.
struct UeSide {
    imsi: u64,
    enb_ue_id: u32,
    rand: Option<u64>,
    mme: u32,
    guti: Option<u64>,
}

/// Replays interleaved multi-UE step sequences against one control
/// plane, asserting all three conservation identities after every
/// message.
struct MultiDriver {
    cp: ControlPlane,
    ues: Vec<UeSide>,
}

impl MultiDriver {
    fn new(n: usize) -> Self {
        let ues = (0..n)
            .map(|u| UeSide { imsi: (u + 1) as u64, enb_ue_id: 0x10 * (u as u32 + 1), rand: None, mme: 0, guti: None })
            .collect();
        MultiDriver { cp: cp_with_backends(), ues }
    }

    fn send(&mut self, u: usize, pdu: &S1apPdu) {
        let out = self.cp.handle_s1ap(pdu);
        let ue = &mut self.ues[u];
        for p in &out {
            match p {
                S1apPdu::DownlinkNasTransport { mme_ue_id, nas, .. } => {
                    if let Ok(NasMsg::AuthenticationRequest { rand, .. }) = NasMsg::decode(nas) {
                        ue.rand = Some(rand);
                        ue.mme = *mme_ue_id;
                    }
                }
                S1apPdu::InitialContextSetupRequest { mme_ue_id, nas, .. } => {
                    ue.mme = *mme_ue_id;
                    if let Ok(NasMsg::AttachAccept { guti, .. }) = NasMsg::decode(nas) {
                        ue.guti = Some(guti);
                    }
                }
                _ => {}
            }
        }
        self.assert_identities("after message");
    }

    fn apply(&mut self, u: usize, step: ProcStep) {
        let ue = &self.ues[u];
        let (imsi, enb_ue_id, mme_ue_id) = (ue.imsi, ue.enb_ue_id, ue.mme);
        match step {
            ProcStep::AttachStart => self.send(
                u,
                &S1apPdu::InitialUeMessage {
                    enb_ue_id,
                    ecgi: 0x100,
                    tac: 1,
                    nas: NasMsg::AttachRequest { imsi, ue_capability: 0xF0 }.encode(),
                },
            ),
            ProcStep::AuthResponse => {
                let res = ue.rand.map(|r| sim_response(Hss::key_for(imsi), r)).unwrap_or(0);
                self.send(
                    u,
                    &S1apPdu::UplinkNasTransport {
                        enb_ue_id,
                        mme_ue_id,
                        nas: NasMsg::AuthenticationResponse { res }.encode(),
                    },
                )
            }
            ProcStep::SecurityModeComplete => self.send(
                u,
                &S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas: NasMsg::SecurityModeComplete.encode() },
            ),
            ProcStep::IcsResponse => self.send(
                u,
                &S1apPdu::InitialContextSetupResponse {
                    enb_ue_id,
                    mme_ue_id,
                    enb_teid: 0xE000 + enb_ue_id,
                    enb_ip: 0xC0A8_0001,
                },
            ),
            ProcStep::AttachComplete => self
                .send(u, &S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas: NasMsg::AttachComplete.encode() }),
            ProcStep::HoRequired => {
                self.send(u, &S1apPdu::HandoverRequired { enb_ue_id, mme_ue_id, target_ecgi: 0x300 })
            }
            ProcStep::HoAck => self.send(
                u,
                &S1apPdu::HandoverRequestAck { mme_ue_id, new_enb_teid: 0xE100 + enb_ue_id, new_enb_ip: 0xC0A8_0002 },
            ),
            ProcStep::Detach => {
                let guti = ue.guti.unwrap_or(0xDEAD_BEEF);
                self.send(
                    u,
                    &S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas: NasMsg::DetachRequest { guti }.encode() },
                )
            }
            ProcStep::BearerModify => {
                self.cp.apply_event(CtrlEvent::ModifyBearer { imsi, ambr_kbps: 4242 });
                self.assert_identities("after bearer event");
            }
            ProcStep::ReleaseRequest => {
                self.send(u, &S1apPdu::UeContextReleaseRequest { enb_ue_id, mme_ue_id, cause: 0 })
            }
            ProcStep::PageTrigger => {
                self.cp.page(imsi);
                self.assert_identities("after page trigger");
            }
            ProcStep::ServiceRequest => {
                let guti = ue.guti.unwrap_or(0xDEAD_BEEF);
                self.send(
                    u,
                    &S1apPdu::InitialUeMessage {
                        enb_ue_id,
                        ecgi: 0x100,
                        tac: 1,
                        nas: NasMsg::ServiceRequest { guti }.encode(),
                    },
                )
            }
        }
    }

    fn assert_identities(&self, when: &str) {
        let m = self.cp.metrics();
        assert!(
            m.signaling_conservation_holds(self.cp.mailbox_backlog()),
            "{when}: s1ap_rx={} consumed={} deduped={} dropped={} overflow={} shed={} backlog={}",
            m.s1ap_rx,
            m.sig_consumed,
            m.proc_deduped,
            m.sig_dropped,
            m.sig_overflow,
            m.sig_shed_total(),
            self.cp.mailbox_backlog()
        );
        assert!(
            m.procedure_accounting_holds(self.cp.procedures_in_flight()),
            "{when}: started={} completed={} preempted={} aborted={} expired={} in_flight={}",
            m.proc_started,
            m.proc_completed,
            m.proc_preempted,
            m.proc_aborted,
            m.proc_expired,
            self.cp.procedures_in_flight()
        );
        assert!(
            m.paging_accounting_holds(self.cp.paging_in_flight()),
            "{when}: paged={} resolved={} expired={} in_flight={}",
            m.paged,
            m.paging_resolved,
            m.paging_expired,
            self.cp.paging_in_flight()
        );
    }

    fn assert_legal_terminal_state(&mut self) {
        self.cp.expire_procedures(1_000_000, 1);
        assert_eq!(self.cp.procedures_in_flight(), 0, "UE stuck mid-procedure after expiry");
        assert_eq!(self.cp.mailbox_backlog(), 0, "mailbox not drained by expiry");
        assert_eq!(self.cp.paging_in_flight(), 0, "page still in flight after expiry");
        self.assert_identities("terminal");
        let n = self.ues.len();
        let users = self.cp.user_count();
        assert!(users <= n, "{n} UEs produced {users} user records");
        for ue in &self.ues {
            if let Some(ctx) = self.cp.context_of(ue.imsi) {
                let c = ctx.ctrl_read().clone();
                assert_eq!(c.imsi, ue.imsi);
                assert_ne!(c.ue_ip, 0, "attached user without a UE IP");
                assert_ne!(c.tunnels.gw_teid, 0, "attached user without a gateway TEID");
                assert!(self.cp.knows_guti(c.guti), "user's GUTI does not route back to it");
            }
        }
        let _ = self.cp.take_updates();
    }
}

fn run_multi(n: usize, seq: &[(u32, ProcStep)]) {
    let mut d = MultiDriver::new(n);
    for &(ue, step) in seq {
        d.apply(ue as usize, step);
    }
    d.assert_legal_terminal_state();
}

/// EVERY order-preserving shuffle of two UEs' full lifecycles —
/// C(18, 9) = 48620 interleavings, covering each paging race (downlink
/// page vs the other UE's signaling vs both detaches) exhaustively.
#[test]
fn two_ue_lifecycle_interleavings_terminate_legally() {
    let s = ue_lifecycle();
    let a: Vec<(u32, ProcStep)> = s.iter().map(|&x| (0, x)).collect();
    let b: Vec<(u32, ProcStep)> = s.iter().map(|&x| (1, x)).collect();
    let mut count = 0u64;
    for_each_interleaving(&a, &b, &mut |seq| {
        count += 1;
        run_multi(2, seq);
    });
    assert_eq!(count, binomial(18, 9), "two-UE matrix enumeration incomplete");
}

/// Seeded shuffles of three (or `$PROC_UES`) full lifecycles at once —
/// the region exhaustive enumeration cannot reach. Same env knobs and
/// failure-trace artifacts as the five-stream shuffle.
#[test]
fn seeded_multi_ue_shuffles_terminate_legally() {
    let n: usize = std::env::var("PROC_UES").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    assert!((2..=8).contains(&n), "PROC_UES must be in 2..=8 (HSS provisions 8 subscribers)");
    let seeds: Vec<u64> = match std::env::var("PROC_SEED") {
        Ok(s) => vec![s.parse().expect("PROC_SEED must be a u64")],
        Err(_) => vec![1, 7, 42],
    };
    let shuffles: u64 = std::env::var("PROC_SHUFFLES").ok().and_then(|s| s.parse().ok()).unwrap_or(200);
    for seed in seeds {
        for k in 0..shuffles {
            let shuffle_seed = seed.wrapping_mul(0x0100_0000_01B3).wrapping_add(k).wrapping_add(0x9E37);
            let scripts: Vec<(u32, Vec<ProcStep>)> = (0..n).map(|u| (u as u32, ue_lifecycle())).collect();
            let mut gen = OverlapGen::new(shuffle_seed, scripts);
            let mut seq = Vec::new();
            while let Some(step) = gen.next_step() {
                seq.push(step);
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| run_multi(n, &seq)));
            if let Err(panic) = outcome {
                save_trace(shuffle_seed, &seq);
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// Retransmitting the Attach Request mid-procedure on the SAME S1
/// association re-emits the cached answer instead of restarting.
#[test]
fn mid_procedure_attach_retransmit_dedups() {
    let mut d = Driver::new();
    let first = d.apply(0x10, ProcStep::AttachStart);
    let again = d.apply(0x10, ProcStep::AttachStart);
    assert_eq!(first, again, "retransmission must replay the cached challenge");
    assert_eq!(d.cp.metrics().proc_deduped, 1);
    assert_eq!(d.cp.metrics().proc_started, 1, "dedup must not start a second procedure");
    d.assert_legal_terminal_state();
}
