//! Observability invariants under a seeded mixed workload with faults.
//!
//! The drop taxonomy must be complete (`rx == forwarded + Σ drop_*` per
//! slice), the pipeline histogram must count exactly the forwarded
//! packets, and the deterministic part of a snapshot (every counter,
//! histogram populations, ring gauges) must be identical across two runs
//! with the same seed.

use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
use pepc::node::PepcNode;
use pepc::pcef::PcefAction;
use pepc::MetricsSnapshot;
use pepc_fabric::{FaultSpec, PortPair, Wire};
use pepc_net::bpf::BpfProgram;
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};
use rand::{Rng, SeedableRng};

fn node(slices: usize) -> PepcNode {
    let config = EpcConfig {
        slices,
        slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..Default::default() },
        ..EpcConfig::default()
    };
    PepcNode::new(config, None)
}

fn keys_of(node: &mut PepcNode, imsi: u64) -> (u32, u32) {
    let k = node.demux().slice_for_imsi(imsi).unwrap();
    let ctx = node.slice(k).ctrl.context_of(imsi).unwrap();
    let c = ctx.ctrl_read();
    (c.tunnels.gw_teid, c.ue_ip)
}

fn uplink(gw_ip: u32, teid: u32, ue_ip: u32, dst_port: u16) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(ue_ip, 0x0808_0808, IpProto::Udp, UDP_HDR_LEN + 16).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(40000, dst_port, 16).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    m.extend(&hdr);
    m.extend(&[0u8; 16]);
    encap_gtpu(&mut m, 0xC0A8_0001, gw_ip, teid).unwrap();
    m
}

fn downlink(ue_ip: u32) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(0x0808_0808, ue_ip, IpProto::Udp, UDP_HDR_LEN + 16).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(443, 40000, 16).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    m.extend(&hdr);
    m.extend(&[0u8; 16]);
    m
}

/// Close the gate for DNS (dst port 53) traffic of `imsi`.
fn close_dns_gate(node: &mut PepcNode, imsi: u64) {
    let k = node.demux().slice_for_imsi(imsi).unwrap();
    node.slice(k).data.apply_update(
        pepc::data::DpUpdate::InstallRule {
            id: 100,
            program: BpfProgram::match_dst_port(53, 100),
            action: PcefAction { qci: 9, rate_kbps: 0, gate_closed: true },
        },
        0,
    );
    let ctx = node.slice(k).ctrl.context_of(imsi).unwrap();
    ctx.ctrl_write().pcef_rules.push(100);
}

/// Drive one seeded mixed workload (valid uplink/downlink, gated flows,
/// unknown TEIDs, garbage frames — shuffled through a faulty wire) and
/// return the node's snapshot.
fn run_mixed_workload(seed: u64) -> MetricsSnapshot {
    let mut n = node(2);
    let imsis: Vec<u64> = (0..16).collect();
    for &imsi in &imsis {
        n.attach(imsi);
    }
    let gated = imsis[3];
    close_dns_gate(&mut n, gated);
    let gw_ip = n.config().gw_ip;
    let keys: Vec<(u32, u32)> = imsis.iter().map(|&i| keys_of(&mut n, i)).collect();

    // Desync one user: the data plane forgets it while the demux still
    // steers its TEID, so its uplinks reach the slice and must be
    // attributed to `drop_unknown_user` (not silently lost).
    let ghost = 5usize;
    let k = n.demux().slice_for_imsi(imsis[ghost]).unwrap();
    let (g_teid, g_ip) = keys[ghost];
    for s in 0..n.slice_count() {
        n.slice(s).sync_now(); // drain queued attach updates first
    }
    n.slice(k).data.apply_update(pepc::data::DpUpdate::Remove { gw_teid: g_teid, ue_ip: g_ip }, 0);

    // A faulty wire between the "eNodeB" and the node: the fault PRNG is
    // seeded, so the exact set of dropped/corrupted packets — and
    // therefore every drop counter — is a pure function of `seed`.
    let (mut enb, enb_far) = PortPair::new(8192);
    let (node_far, mut rx) = PortPair::new(8192);
    let mut wire = Wire::new(
        enb_far,
        node_far,
        FaultSpec { drop_chance: 0.05, corrupt_chance: 0.10, seed, ..FaultSpec::default() },
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..4000 {
        let m = match rng.gen_range(0..10u32) {
            // Valid uplink from a random attached user (skipping the
            // desynced one).
            0..=4 => {
                let mut u = rng.gen_range(0..keys.len());
                if u == ghost {
                    u = (u + 1) % keys.len();
                }
                let (teid, ue_ip) = keys[u];
                uplink(gw_ip, teid, ue_ip, 80)
            }
            // Valid downlink toward a random attached user.
            5..=6 => {
                let (_, ue_ip) = keys[rng.gen_range(0..keys.len())];
                downlink(ue_ip)
            }
            // DNS from the gated user: PCEF gate drop.
            7 => {
                let (teid, ue_ip) = keys[gated as usize];
                uplink(gw_ip, teid, ue_ip, 53)
            }
            // The desynced user's TEID: steers to a slice whose data
            // plane holds no state for it.
            8 => uplink(gw_ip, g_teid, g_ip, 80),
            // Garbage frame: malformed.
            _ => {
                let mut bytes = vec![0u8; rng.gen_range(0..64)];
                rng.fill(&mut bytes[..]);
                Mbuf::from_payload(&bytes)
            }
        };
        enb.tx(m);
    }
    while wire.pump(256) > 0 {}
    let mut arrived = Vec::new();
    rx.rx_burst(&mut arrived, usize::MAX);
    for m in arrived {
        let _ = n.process(m);
    }
    n.metrics_snapshot()
}

#[test]
fn mixed_workload_with_faults_conserves_every_packet() {
    let snap = run_mixed_workload(0xFEED);
    assert_eq!(snap.slices.len(), 2);

    // Per slice: rx == forwarded + every drop cause, and the pipeline
    // histogram holds exactly one sample per forwarded packet.
    for s in &snap.slices {
        let d = &s.data;
        assert_eq!(
            d.rx,
            d.forwarded + d.drop_unknown_user + d.drop_gate + d.drop_qos + d.drop_malformed,
            "conservation violated on slice {}: {d:?}",
            s.slice_id
        );
        assert_eq!(s.pipeline_ns.count(), d.forwarded, "slice {}", s.slice_id);
        // The gate rule was installed by `apply_update` directly (no ring
        // hop), so the delay histogram may undercount by that one update.
        assert!(s.update_delay_ns.count() <= d.updates_applied, "slice {}", s.slice_id);
        assert_eq!(s.attach_ns.count(), s.ctrl.attaches, "slice {}", s.slice_id);
    }
    assert!(snap.conservation_holds());

    // The workload actually exercised the taxonomy: all three
    // timing-independent drop causes fired, and most traffic survived.
    let t = snap.data_totals();
    assert!(t.forwarded > 2000, "forwarded {}", t.forwarded);
    assert!(t.drop_unknown_user > 0, "no unknown-user drops");
    assert!(t.drop_gate > 0, "no gate drops");
    assert!(t.drop_malformed > 0, "no malformed drops");
    assert!(snap.render().contains("conservation=ok"));
}

#[test]
fn qos_drops_are_attributed_not_leaked() {
    let mut n = node(1);
    n.attach(1);
    // Throttle user 1 to 8 kbps (1000 B/s, 1500 B burst floor) and flood:
    // the bucket must exhaust and every rejection must land in drop_qos.
    assert!(n.ctrl_event(pepc::ctrl::CtrlEvent::ModifyBearer { imsi: 1, ambr_kbps: 8 }));
    let gw_ip = n.config().gw_ip;
    let (teid, ue_ip) = keys_of(&mut n, 1);
    for _ in 0..500 {
        let _ = n.process(uplink(gw_ip, teid, ue_ip, 80));
    }
    let snap = n.metrics_snapshot();
    let d = &snap.slices[0].data;
    assert_eq!(d.rx, 500);
    assert!(d.drop_qos > 0, "rate limiter never fired: {d:?}");
    assert!(snap.conservation_holds(), "{d:?}");
    assert_eq!(snap.slices[0].pipeline_ns.count(), d.forwarded);
}

#[test]
fn same_seed_runs_produce_identical_snapshots() {
    let a = run_mixed_workload(42);
    let b = run_mixed_workload(42);
    // Counters, drop taxonomy, user counts, histogram populations and
    // ring gauges are a pure function of the seed; only measured latency
    // values (wall clock) may differ.
    assert!(a.deterministic_eq(&b), "same seed diverged:\n{}\nvs\n{}", a.render(), b.render());

    // A different seed takes different fault decisions.
    let c = run_mixed_workload(43);
    assert!(!a.deterministic_eq(&c), "distinct seeds produced identical fault patterns");

    // And the exported form carries the same deterministic content.
    let back = MetricsSnapshot::from_json(&a.to_json()).unwrap();
    assert!(back.deterministic_eq(&a));
}
