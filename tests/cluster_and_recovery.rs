//! Integration tests for the deployment-level extensions: the multi-node
//! cluster (Figure 1(b)) and slice checkpoint/restore (§8 failure
//! handling), exercised end to end.

use pepc::cluster::Cluster;
use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
use pepc::ctrl::CtrlEvent;
use pepc::recovery;
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};

fn template() -> EpcConfig {
    EpcConfig {
        slices: 2,
        slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..Default::default() },
        ..EpcConfig::default()
    }
}

fn uplink(teid: u32, ue_ip: u32) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(ue_ip, 0x0808_0808, IpProto::Udp, UDP_HDR_LEN + 8).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(1, 2, 8).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    m.extend(&hdr);
    m.extend(&[0u8; 8]);
    encap_gtpu(&mut m, 0xC0A8_0001, 0x0AFE_0001, teid).unwrap();
    m
}

fn keys_of(c: &mut Cluster, imsi: u64) -> (u32, u32) {
    let k = c.home_node(imsi);
    let node = c.node(k);
    let s = node.demux().slice_for_imsi(imsi).unwrap();
    let ctx = node.slice(s).ctrl.context_of(imsi).unwrap();
    let g = ctx.ctrl_read();
    (g.tunnels.gw_teid, g.ue_ip)
}

#[test]
fn cluster_serves_hundreds_of_users_end_to_end() {
    let mut c = Cluster::new(4, template(), None);
    for imsi in 0..300u64 {
        c.attach(imsi);
        let k = c.home_node(imsi);
        c.node(k).ctrl_event(CtrlEvent::S1Handover {
            imsi,
            new_enb_teid: 0xE000 + imsi as u32,
            new_enb_ip: 0xC0A8_0001,
        });
    }
    assert_eq!(c.user_count(), 300);
    for imsi in 0..300u64 {
        let (teid, ue_ip) = keys_of(&mut c, imsi);
        assert!(c.process(uplink(teid, ue_ip)).is_forward(), "imsi {imsi}");
    }
}

#[test]
fn cluster_node_identifier_regions_are_disjoint() {
    let mut c = Cluster::new(3, template(), None);
    let mut teids = std::collections::HashSet::new();
    let mut ips = std::collections::HashSet::new();
    for imsi in 0..150u64 {
        c.attach(imsi);
        let (teid, ue_ip) = keys_of(&mut c, imsi);
        assert!(teids.insert(teid), "duplicate TEID {teid:#x}");
        assert!(ips.insert(ue_ip), "duplicate UE IP {ue_ip:#x}");
    }
}

#[test]
fn checkpoint_restore_survives_node_failure() {
    // "Fail" a node: checkpoint its slice, rebuild a fresh node elsewhere
    // from the checkpoint, and resume service for every user.
    let mut node = pepc::node::PepcNode::new(template(), None);
    let imsis: Vec<u64> = (0..100).collect();
    let mut keys = Vec::new();
    for &imsi in &imsis {
        node.attach(imsi);
        node.ctrl_event(CtrlEvent::S1Handover { imsi, new_enb_teid: 0xE000 + imsi as u32, new_enb_ip: 0xC0A8_0001 });
        let k = node.demux().slice_for_imsi(imsi).unwrap();
        let ctx = node.slice(k).ctrl.context_of(imsi).unwrap();
        let c = ctx.ctrl_read();
        keys.push((c.tunnels.gw_teid, c.ue_ip));
    }
    // Traffic accumulates charging state.
    for (i, &(teid, ue_ip)) in keys.iter().enumerate() {
        for _ in 0..=i % 5 {
            assert!(node.process(uplink(teid, ue_ip)).is_forward());
        }
    }

    // Checkpoint both slices of the failing node.
    let cp0 = recovery::checkpoint(&node.slice(0).ctrl);
    let cp1 = recovery::checkpoint(&node.slice(1).ctrl);
    drop(node); // the failure

    // Recover into a fresh node: users from both checkpoints land on
    // slice 0 and 1 respectively, then the data plane syncs.
    let mut recovered = pepc::node::PepcNode::new(template(), None);
    let n0 = recovery::restore(&mut recovered.slice(0).ctrl, &cp0).unwrap();
    let n1 = recovery::restore(&mut recovered.slice(1).ctrl, &cp1).unwrap();
    assert_eq!(n0 + n1, 100);
    recovered.slice(0).sync_now();
    recovered.slice(1).sync_now();
    // Rebuild the Demux from restored state (what a recovery controller
    // does from the same checkpoint).
    for k in 0..2 {
        for imsi in recovered.slice(k).ctrl.imsis() {
            let ctx = recovered.slice(k).ctrl.context_of(imsi).unwrap();
            let c = ctx.ctrl_read();
            let (teid, ue_ip) = (c.tunnels.gw_teid, c.ue_ip);
            drop(c);
            recovered.demux_mut_for_recovery(imsi, teid, ue_ip, k);
        }
    }

    // Every user resumes on the same tunnels with counters intact.
    let mut total_packets = 0;
    for (i, &(teid, ue_ip)) in keys.iter().enumerate() {
        assert!(recovered.process(uplink(teid, ue_ip)).is_forward(), "user {i}");
        total_packets += 1;
    }
    assert_eq!(total_packets, 100);
    let k = recovered.demux().slice_for_imsi(7).unwrap();
    let counters = recovered.slice(k).ctrl.counters_of(7).unwrap();
    // 7 % 5 = 2 → 3 pre-failure packets + 1 post-recovery.
    assert_eq!(counters.uplink_packets, 4, "charging state survived the failure");
}

#[test]
fn restore_is_idempotent_per_user() {
    let mut node = pepc::node::PepcNode::new(template(), None);
    node.attach(7);
    let k = node.demux().slice_for_imsi(7).unwrap();
    let cp = recovery::checkpoint(&node.slice(k).ctrl);
    // Restoring on top of a live slice overwrites rather than duplicates.
    let before = node.slice(k).ctrl.user_count();
    recovery::restore(&mut node.slice(k).ctrl, &cp).unwrap();
    assert_eq!(node.slice(k).ctrl.user_count(), before);
}
