//! Offline shim for `serde_json`.
//!
//! JSON text encode/decode over the shim `serde` crate's [`Value`] model,
//! exposing the four entry points the repo uses (`to_vec`, `to_string`,
//! `from_slice`, `from_str`) plus `Value` itself for untyped inspection
//! (`v["version"] == 1`, `v["users"].is_array()`).

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Parse or serialize error. Wraps the shim serde error so both layers
/// render through one `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error::from)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn emit(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Like serde_json, keep a float distinguishable from an int.
                let s = n.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_str(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_str(k, out);
                out.push(':');
                emit(item, out);
            }
            out.push('}');
        }
    }
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs unsupported; BMP only.
                            out.push(char::from_u32(code).ok_or_else(|| Error::new("invalid \\u code point"))?);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' if self.pos > start => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Object(vec![
            ("version".into(), Value::U64(1)),
            ("name".into(), Value::Str("a\"b\nc".into())),
            ("neg".into(), Value::I64(-5)),
            ("f".into(), Value::F64(1.5)),
            ("users".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["version"], 1);
        assert!(back["users"].is_array());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_slice::<Value>(b"not json").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn float_stays_float() {
        let text = to_string(&Value::F64(2.0)).unwrap();
        assert_eq!(text, "2.0");
    }
}
