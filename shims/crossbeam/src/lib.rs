//! Offline shim for the `crossbeam` crate.
//!
//! Provides the subset the repo uses: `utils::CachePadded` (alignment
//! wrapper that keeps hot atomics on their own cache line) and
//! `channel::{unbounded, Sender, Receiver}` backed by `std::sync::mpsc`.

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) one cache line so two
    /// `CachePadded` values never share a line (no false sharing).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), repr(align(128)))]
    #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "aarch64")), repr(align(64)))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        #[inline]
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        #[inline]
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Unbounded MPSC channel (the repo only ever attaches one consumer,
    /// so mpsc semantics match the crossbeam usage here).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use super::utils::CachePadded;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn cache_padded_alignment() {
        assert!(std::mem::align_of::<CachePadded<AtomicUsize>>() >= 64);
        let p = CachePadded::new(5u32);
        assert_eq!(*p, 5);
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u8).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert!(rx.try_recv().is_err());
    }
}
