//! Offline shim for the `rand` crate.
//!
//! Implements the subset the repo uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool,
//! fill}` — on top of xoshiro256** seeded through SplitMix64. Sequences
//! are deterministic per seed (the property every seeded test relies on)
//! but are NOT the same sequences the real `rand` crate produces.

/// Core generator: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point the repo
/// uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(rng: &mut dyn FnMut() -> u64) -> Self {
                rng() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                debug_assert!(lo < hi, "gen_range on an empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span/2^64 — irrelevant for test workloads.
                let off = (rng() as u128) % span;
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing RNG surface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` (integers: full range; f64: [0,1)).
    fn gen<T: Standard>(&mut self) -> T {
        let mut f = || self.next_u64();
        T::sample_standard(&mut f)
    }

    /// Uniform integer in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        let mut f = || self.next_u64();
        T::sample_range(range.start, range.end, &mut f)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn fill_covers_all_bytes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 33];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
