//! Offline shim for the `criterion` crate.
//!
//! Keeps the `criterion_group!`/`criterion_main!` harness surface so
//! `cargo bench` runs the repo's 12 figure benches unmodified, but the
//! measurement core is a plain calibrated timing loop printing mean
//! ns/iter — no statistics, plots, or reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: `group/function/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until it runs long enough to time.
        // The calibration batches double as cache/branch warmup.
        let mut batch = 1u64;
        let target = Duration::from_millis(40);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || batch >= 1 << 30 {
                break;
            }
            batch = batch.saturating_mul(if elapsed.is_zero() {
                128
            } else {
                (target.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            });
        }
        // Measure: median of several samples. A single ~20ms sample is
        // hostage to scheduler interference (especially with a
        // contention thread running); the median keeps sustained effects
        // (real blocking) while shedding one-off outliers. Not min-of-N:
        // that would hide exactly the contention cost the lock benches
        // exist to measure.
        const SAMPLES: usize = 11;
        let mut ns = [0.0f64; SAMPLES];
        for s in &mut ns {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            *s = start.elapsed().as_nanos() as f64 / batch as f64;
        }
        ns.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = ns[SAMPLES / 2];
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { last_ns: 0.0 };
    f(&mut b);
    println!("bench {name:<50} {:>12.1} ns/iter", b.last_ns);
}

/// Top-level handle passed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }

    /// Config knobs accepted for compatibility; the shim ignores them.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn finish(&mut self) {}
}

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { last_ns: 0.0 };
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.last_ns > 0.0);
    }

    #[test]
    fn group_and_id_render() {
        let id = BenchmarkId::new("sync_every", 32);
        assert_eq!(id.to_string(), "sync_every/32");
    }
}
