//! Offline shim for the `serde` crate.
//!
//! The build container has no registry access, so the workspace points
//! `serde` here. Call sites keep the idiomatic surface — `#[derive(
//! Serialize, Deserialize)]` plus the `serde_json` entry points — but the
//! data model is a single JSON-shaped [`Value`] instead of serde's
//! generic serializer/deserializer pair. Code that only uses derives and
//! `serde_json::{to_vec, to_string, from_slice, from_str}` (all of this
//! repo) compiles unchanged against either implementation.

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model everything serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (stable output for snapshot diffing).
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(n) => Some(n),
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// `value["field"]` — missing keys yield `Null`, like serde_json.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, name: &str) -> &Value {
        self.get_field(name).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64().is_some_and(|n| n == *other as i64)
                    || self.as_u64().is_some_and(|n| i64::try_from(n).map_or(false, |n| n == *other as i64))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(i32, i64, u32);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Serialization / deserialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    pub fn missing_field(name: &str) -> Self {
        Error { msg: format!("missing field `{name}`") }
    }

    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error { msg: format!("expected {expected}, got {kind}") }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::type_mismatch(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::type_mismatch(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::type_mismatch("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|n| n as f32).ok_or_else(|| Error::type_mismatch("f32", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::type_mismatch("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::type_mismatch("string", v))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            _ => Err(Error::type_mismatch("array", v)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            Value::Array(items) => Err(Error::custom(format!("expected array of {N}, got {}", items.len()))),
            _ => Err(Error::type_mismatch("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_eq_sugar() {
        let v = Value::Object(vec![("version".into(), Value::U64(1)), ("users".into(), Value::Array(vec![]))]);
        assert_eq!(v["version"], 1);
        assert!(v["users"].is_array());
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert_eq!(<[u16; 3]>::from_value(&[7u16, 8, 9].to_value()).unwrap(), [7, 8, 9]);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }
}
