//! Offline shim for the `parking_lot` crate.
//!
//! The container this repo builds in has no network access to crates.io,
//! so the workspace points `parking_lot` at this path crate. It exposes
//! the subset of the real API the repo uses — `RwLock` and `Mutex` with
//! panic-on-poison guards (parking_lot has no lock poisoning, so callers
//! never see a `Result`) — implemented over `std::sync`.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock, RwLockReadGuard as StdReadGuard,
    RwLockWriteGuard as StdWriteGuard,
};

/// parking_lot-compatible reader/writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    #[inline]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// parking_lot-compatible mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
