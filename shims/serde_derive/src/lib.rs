//! Offline shim for `serde_derive`.
//!
//! Hand-rolled proc macros (no syn/quote — the registry is unreachable)
//! covering exactly the shapes this repo derives on: structs with named
//! fields and enums with unit variants. Anything else gets a
//! `compile_error!` naming the limitation instead of a silent
//! mis-serialization.
//!
//! Generated impls target the shim `serde` crate's value-model traits
//! (`Serialize::to_value` / `Deserialize::from_value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    /// Named-field struct: (type name, field names).
    Struct(String, Vec<String>),
    /// Unit-variant enum: (type name, variant names).
    Enum(String, Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("shim serde_derive generated invalid Rust")
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skip any run of outer attributes (`#[...]`, including doc comments and
/// `#[default]`) and a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(toks: &mut Tokens) -> Result<(), String> {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => return Ok(()),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks)?;

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!("shim serde_derive: generic type `{name}` unsupported"));
        }
        _ => {
            return Err(format!("shim serde_derive: `{name}` must have a braced body (tuple/unit items unsupported)"));
        }
    };

    match kind.as_str() {
        "struct" => Ok(Item::Struct(name, parse_named_fields(body)?)),
        "enum" => Ok(Item::Enum(name, parse_unit_variants(body)?)),
        other => Err(format!("expected `struct` or `enum`, got `{other}`")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut toks = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks)?;
        let field = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        // Consume the type: everything up to the next comma at
        // angle-bracket depth 0. `>>` arrives as two separate puncts.
        let mut depth = 0i32;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut toks = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks)?;
        let variant = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        match toks.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to next comma.
                for t in toks.by_ref() {
                    if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "shim serde_derive: variant `{variant}` carries data; only unit variants are supported"
                ));
            }
            other => return Err(format!("unexpected token after variant `{variant}`: {other:?}")),
        }
        variants.push(variant);
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants.iter().map(|v| format!("{name}::{v} => \"{v}\",")).collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct(name, fields) => {
            // Missing fields read as Null so `Option` fields tolerate
            // absence while everything else reports a type mismatch.
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(\
                             v.get_field(\"{f}\").unwrap_or(&serde::Value::Null))?,"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         if !v.is_object() {{\n\
                             return Err(serde::Error::type_mismatch(\"object\", v));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants.iter().map(|v| format!("\"{v}\" => Ok({name}::{v}),")).collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(serde::Error::custom(\
                                     format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             _ => Err(serde::Error::type_mismatch(\"string\", v)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
