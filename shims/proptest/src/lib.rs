//! Offline shim for the `proptest` crate.
//!
//! Implements the DSL subset this repo's property tests use — the
//! `proptest!` macro, `any::<T>()`, integer-range strategies, tuple
//! strategies, `prop_map`, `prop_oneof!`, `collection::{vec, hash_set}`,
//! and `prop_assert{,_eq}!` — running a fixed number of deterministic
//! seeded cases per property. No shrinking: a failing case reports its
//! case index and seed so it can be replayed by rerunning the test.

use std::collections::HashSet;

/// Deterministic per-test RNG (xorshift64*; seeded per property).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Failure raised by `prop_assert!`/`prop_assert_eq!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a full-range default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy that always yields a fixed value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `proptest::option` — strategies for `Option<T>`.
pub mod option {
    use crate::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(inner)` half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((self.start as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Helper for `prop_oneof!` — unifies arm types into one boxed strategy.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

pub mod collection {
    use super::{HashSet, Strategy, TestRng};
    use std::hash::Hash;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `HashSet` of `element` values with a size drawn from `len`. The
    /// element domain must be large enough to reach the minimum size.
    pub fn hash_set<S: Strategy>(element: S, len: std::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, len }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.len.generate(rng);
            let mut out = HashSet::new();
            // Duplicates shrink the set; bounded retries restore the
            // minimum as long as the element domain is large enough.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 100 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.len.start,
                "hash_set strategy could not reach minimum size {} (domain too small?)",
                self.len.start
            );
            out
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, boxed, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, Strategy, TestCaseError,
        TestRng,
    };
}

/// Number of deterministic cases run per property.
pub const CASES: u64 = 96;

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Seed differs per property (derived from its name) but is
                // stable across runs.
                let mut seed = 0xB5EDu64;
                for b in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(31).wrapping_add(b as u64);
                }
                let mut rng = $crate::TestRng::new(seed);
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property `{}` failed on case {case} (seed {seed:#x}): {e}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in -5i64..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u8..4, any::<bool>()).prop_map(|(a, b)| (a as u32, b)),
            items in crate::collection::vec(any::<u8>(), 0..16),
            keys in crate::collection::hash_set(0u64..100, 1..10),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!(items.len() < 16);
            prop_assert!(!keys.is_empty() && keys.len() < 10);
        }

        #[test]
        fn oneof_picks_every_arm_shape(
            v in crate::collection::vec(
                prop_oneof![
                    (0u8..3).prop_map(|n| n as u32),
                    any::<u32>(),
                    (any::<u16>(), 0u8..2).prop_map(|(k, _)| k as u32),
                ],
                1..32,
            ),
        ) {
            prop_assert!(!v.is_empty());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
